"""Fused command programs: many worker commands, ONE broadcast/barrier.

The paper's cost model is synchronization: every master command costs one
broadcast + barrier no matter how little work it carries.  The batched
optimizers issue long sequences of tiny commands (prepare, then a
derivative pass, then guard evaluations, then per-partition parameter
writes) whose IPC round-trips dwarf the numpy kernel work.  A *program*
packs an ordered list of those commands into a single exchange: the
master broadcasts ``("prog", steps)`` once, each worker executes the
steps back to back over its private pattern slice and returns one partial
result per step, and the collective completion of the single exchange is
the only barrier.  Worker-side results are already reduction-ready
partials (partial lnL sums, partial (d1, d2) sums), so the master reduces
exactly as it would have for ``len(steps)`` separate broadcasts — the
fused exchange is semantically identical, just 1 barrier instead of N.

This module also defines the *fixed result layout* used by the
shared-memory result plane (:mod:`repro.parallel.shm`): every command's
reply shape is derivable master-side from the command alone (a scalar, a
``(P,)`` vector, a ``(d1, d2)`` pair of ``(P,)`` vectors, or nothing), so
a worker can write its reply into a preallocated float64 row and the pipe
only needs to carry a tiny "ready" token.  Commands with replies outside
this vocabulary (unknown ops, non-float payloads) transparently fall back
to the pickled-pipe reply; both sides derive the layout from the same
table, so they always agree.
"""
from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.trace import describe_command

__all__ = [
    "Program",
    "RESULT_SHAPES",
    "WIRE_VERSION",
    "program_steps",
    "result_shapes",
    "result_width",
    "encode_results",
    "decode_results",
]

#: Version of the master<->worker wire protocol: the command-tuple
#: vocabulary, the ``("prog", steps)`` fusion format, and the
#: :data:`RESULT_SHAPES` reply layout.  Documented as a protocol
#: reference in ``docs/ARCHITECTURE.md``; bump on any incompatible
#: change to the command vocabulary or reply layout.
WIRE_VERSION = 1

#: Reply shape per worker command op.  ``"scalar"`` -> one float,
#: ``"vec"`` -> a ``(P,)`` float vector, ``"pair"`` -> a ``(d1, d2)``
#: tuple of ``(P,)`` vectors, ``"none"`` -> no payload.  Ops absent from
#: this table have replies the fixed layout cannot carry; exchanges
#: containing them use the pickled pipe reply.
RESULT_SHAPES = {
    "lnl": "scalar",
    "lnl_parts": "vec",
    "branch_lnl": "vec",
    "eval_alpha": "vec",
    "deriv": "pair",
    "prepare": "none",
    "release": "none",
    "set_bl": "none",
    "set_bl_vec": "none",
    "set_alpha": "none",
    "set_alpha_vec": "none",
    "set_model": "none",
}


@dataclass(frozen=True)
class Program:
    """An ordered list of worker commands fused into one broadcast.

    ``steps`` is a tuple of ordinary command tuples (the same tuples
    :class:`~repro.parallel.worker.WorkerState` executes one at a time);
    the wire form is ``("prog", steps)``.  Programs do not nest and the
    ``"stop"`` sentinel is not a step.
    """

    steps: tuple[tuple, ...]

    def __post_init__(self) -> None:
        if not self.steps:
            raise ValueError("a program needs at least one step")
        for step in self.steps:
            if not isinstance(step, tuple) or not step:
                raise ValueError(f"malformed program step {step!r}")
            if step[0] in ("prog", "stop"):
                raise ValueError(f"{step[0]!r} cannot be a program step")

    @property
    def command(self) -> tuple:
        """The wire-format broadcast command."""
        return ("prog", self.steps)

    @property
    def label(self) -> str:
        """Human-readable tag, e.g. ``"prog(prepare+deriv)"``."""
        return describe_command(self.command)[0]


def program_steps(cmd: tuple) -> tuple[tuple, ...]:
    """The worker commands a broadcast executes (one for plain commands)."""
    return cmd[1] if cmd[0] == "prog" else (cmd,)


def result_shapes(cmd: tuple) -> list[str] | None:
    """Per-step reply shapes of a broadcast, or ``None`` if any step's
    reply falls outside the fixed float64 layout (pipe fallback)."""
    shapes = []
    for step in program_steps(cmd):
        shape = RESULT_SHAPES.get(step[0])
        if shape is None:
            return None
        shapes.append(shape)
    return shapes


def _shape_width(shape: str, n_partitions: int) -> int:
    if shape == "none":
        return 0
    if shape == "scalar":
        return 1
    if shape == "vec":
        return n_partitions
    if shape == "pair":
        return 2 * n_partitions
    raise ValueError(f"unknown result shape {shape!r}")


def result_width(shapes: list[str], n_partitions: int) -> int:
    """Total float64 slots one worker's reply occupies."""
    return sum(_shape_width(s, n_partitions) for s in shapes)


def encode_results(
    row: np.ndarray, cmd: tuple, value, shapes: list[str], n_partitions: int
) -> None:
    """Worker side: write a broadcast's reply into this worker's row.

    ``value`` is what ``WorkerState.execute(cmd)`` returned — the single
    result for a plain command, the per-step result list for a program.
    """
    values = value if cmd[0] == "prog" else (value,)
    off = 0
    for shape, v in zip(shapes, values):
        if shape == "none":
            continue
        if shape == "scalar":
            row[off] = v
            off += 1
        elif shape == "vec":
            row[off:off + n_partitions] = v
            off += n_partitions
        else:  # pair
            d1, d2 = v
            row[off:off + n_partitions] = d1
            row[off + n_partitions:off + 2 * n_partitions] = d2
            off += 2 * n_partitions


def decode_results(
    row: np.ndarray, cmd: tuple, shapes: list[str], n_partitions: int
):
    """Master side: reconstruct a worker's reply from its result row.

    Returns exactly what the pickled-pipe reply would have carried: the
    single result for a plain command, a per-step list for a program
    (``None`` in the slots of result-less steps).
    """
    out = []
    off = 0
    for shape in shapes:
        if shape == "none":
            out.append(None)
        elif shape == "scalar":
            out.append(float(row[off]))
            off += 1
        elif shape == "vec":
            out.append(row[off:off + n_partitions].copy())
            off += n_partitions
        else:  # pair
            out.append(
                (
                    row[off:off + n_partitions].copy(),
                    row[off + n_partitions:off + 2 * n_partitions].copy(),
                )
            )
            off += 2 * n_partitions
    return out if cmd[0] == "prog" else out[0]
