"""Real parallel PLK execution: thread-team and process-team backends.

Both backends execute the same master/worker protocol the simulator
models: the master broadcasts a command, every worker executes it over its
pattern slice, partial results are reduced.  On top of the raw protocol,
:class:`ParallelPLK` implements branch-length and alpha optimization under
both scheduling strategies, so real wall-clock oldPAR/newPAR comparisons
can be measured on the host machine (benchmark REAL1).

Backend notes
-------------
``threads``
    ``threading`` workers + barriers.  NumPy's BLAS kernels release the
    GIL, so large slices see real concurrency; small slices are dominated
    by the interpreter and synchronize frequently — which is faithful to
    the phenomenon under study, if not to absolute C speeds.
``processes``
    Forked workers with pipe-based command/response (mpi4py-style
    master/worker).  True parallelism; the per-command pipe round-trip
    plays the role of the Pthreads barrier.
"""
from __future__ import annotations

import itertools
import pickle
import threading
import time
import traceback
from dataclasses import dataclass

import multiprocessing as mp

import numpy as np

from ..core.trace import describe_command
from ..obs.convergence import NullTelemetry
from ..obs.metrics import NullMetrics
from ..obs.tracer import NullTracer
from ..optimize.newton import BatchedNewton, newton_optimize
from ..optimize.brent import BatchedBrent
from ..plk.kernels import normalize_kernel_name
from ..plk.partition import PartitionedAlignment
from ..plk.tree import Tree
from .balance import DistributionPlan, PartitionLayout, build_plan, imbalance_ratio
from .program import Program, decode_results, encode_results, result_shapes, result_width
from .shm import SharedInputArena, SharedResultPlane, WorkerStatsPlane
from .worker import WorkerState, slice_partition_data

__all__ = ["ParallelPLK", "WorkerError"]

_BRANCH_MIN, _BRANCH_MAX = 1e-8, 50.0
_ALPHA_MIN, _ALPHA_MAX = 0.02, 100.0

# Bucket edges for the commands-per-barrier histogram (a plain command is
# 1; the fused optimizer programs land at 2-3; headroom above).
_COMMANDS_PER_BARRIER_BUCKETS = (1.5, 2.5, 3.5, 4.5, 6.5, 8.5, 16.5)


class WorkerError(RuntimeError):
    """An exception raised (or a crash suffered) by one worker, surfaced on
    the master after the broadcast's barrier protocol has completed — the
    team never deadlocks on a failing worker.

    Attributes
    ----------
    rank:
        The failing worker's index.
    original:
        The worker-side exception (or the transport error, for a dead
        process).
    """

    def __init__(self, rank: int, original: BaseException, detail: str = ""):
        self.rank = rank
        self.original = original
        msg = f"worker {rank} failed: {original!r}"
        if detail:
            msg = f"{msg}\n{detail.rstrip()}"
        super().__init__(msg)


# Result-slot tags used by both backends' reply protocol.  _SHM marks a
# reply whose payload was written into the worker's shared-memory result
# row (the pipe carries only the tag + busy seconds).
_OK, _ERR, _SHM = "ok", "err", "shm"

#: Zeroed comms statistics (the threads backend shares one address space,
#: so nothing crosses a pipe and nothing needs a shm plane).
_LOCAL_COMMS_STATS = {
    "comms": "local",
    "pipe_tx_bytes": 0,
    "pipe_rx_bytes": 0,
    "shm_rx_bytes": 0,
}


class _ThreadTeam:
    """Barrier-synchronized thread workers.

    Protocol guarantees:

    * a worker ALWAYS reaches the done-barrier, even when ``execute``
      raises — the exception travels back in the worker's result slot and
      the master re-raises the first one as :class:`WorkerError` *after*
      the barrier completes, so the team stays usable;
    * ``close()`` is idempotent (``with team: ... team.close()`` is fine).
    """

    def __init__(self, states: list[WorkerState]):
        self.states = states
        self.n = len(states)
        self._cmd: tuple | None = None
        self._timed = False
        self._results: list = [None] * self.n
        self._start = threading.Barrier(self.n + 1)
        self._done = threading.Barrier(self.n + 1)
        self._stop = False
        self._closed = False
        self._threads = [
            threading.Thread(target=self._loop, args=(i,), daemon=True)
            for i in range(self.n)
        ]
        for t in self._threads:
            t.start()

    def _loop(self, rank: int) -> None:
        stats = self.states[rank].stats
        while True:
            if stats is None:
                self._start.wait()
            else:
                t_wait = time.perf_counter()
                self._start.wait()
                stats.wait(time.perf_counter() - t_wait)
            if self._stop:
                return
            try:
                if self._timed:
                    value, busy = self.states[rank].execute_timed(self._cmd)
                    self._results[rank] = (_OK, value, busy)
                else:
                    self._results[rank] = (_OK, self.states[rank].execute(self._cmd), 0.0)
            except BaseException as exc:  # noqa: BLE001 - shipped to the master
                self._results[rank] = (_ERR, exc, traceback.format_exc())
            self._done.wait()

    def _exchange(self, cmd: tuple, timed: bool) -> tuple[list, list[float]]:
        if self._closed:
            raise RuntimeError("worker team is closed")
        self._cmd = cmd
        self._timed = timed
        self._start.wait()
        self._done.wait()
        results: list = [None] * self.n
        times = [0.0] * self.n
        failure: WorkerError | None = None
        for rank, (tag, payload, extra) in enumerate(self._results):
            if tag == _ERR:
                if failure is None:
                    failure = WorkerError(rank, payload, extra)
            else:
                results[rank] = payload
                times[rank] = extra
        if failure is not None:
            raise failure
        return results, times

    def broadcast(self, cmd: tuple) -> list:
        return self._exchange(cmd, timed=False)[0]

    def broadcast_timed(self, cmd: tuple) -> tuple[list, list[float]]:
        """As :meth:`broadcast`, plus each worker's execute() seconds."""
        return self._exchange(cmd, timed=True)

    def comms_stats(self) -> dict:
        """Bytes-moved counters (all zero: threads share memory)."""
        return dict(_LOCAL_COMMS_STATS)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._stop = True
        try:
            self._start.wait(timeout=5)
        except threading.BrokenBarrierError:
            pass
        for t in self._threads:
            t.join(timeout=5)


def _process_worker_main(
    conn, slices, tree, models, alphas, lengths, categories, kernel=None,
    result_row=None, stats_row=None, rank=0,
):
    state = WorkerState(slices, tree, models, alphas, lengths, categories, kernel)
    state.rank = rank
    if stats_row is not None:
        state.attach_stats(stats_row, rank)
    stats = state.stats
    n_parts = len(state.parts)
    while True:
        t_wait = time.perf_counter() if stats is not None else 0.0
        try:
            cmd, timed = conn.recv()
        except (EOFError, OSError):
            return
        if stats is not None:
            stats.wait(time.perf_counter() - t_wait)
        if cmd[0] == "stop":
            conn.close()
            return
        try:
            if timed:
                value, busy = state.execute_timed(cmd)
            else:
                value, busy = state.execute(cmd), 0.0
            if result_row is not None:
                shapes = result_shapes(cmd)
                if shapes is not None and result_width(shapes, n_parts) <= result_row.size:
                    encode_results(result_row, cmd, value, shapes, n_parts)
                    conn.send((_SHM, None, busy))
                    continue
            reply = (_OK, value, busy)
        except BaseException as exc:  # noqa: BLE001 - shipped to the master
            tb = traceback.format_exc()
            try:
                reply = (_ERR, exc, tb)
                conn.send(reply)
                continue
            except Exception:
                # Unpicklable exception: degrade to its repr.
                reply = (_ERR, RuntimeError(repr(exc)), tb)
        conn.send(reply)


class _ProcessTeam:
    """Forked process workers with pipe command/response channels.

    Worker-side exceptions are caught in the child and shipped back over
    the pipe (same slot protocol as :class:`_ThreadTeam`).  If a child
    *dies* outright, the master's ``recv`` sees ``EOFError``: the team is
    then terminated cleanly (no leaked processes, no leaked shared-memory
    segments) and a :class:`WorkerError` names the dead rank.

    ``comms`` selects the result transport: ``"pipe"`` pickles every
    reply over the pipe; ``"shm"`` builds the zero-copy plane of
    :mod:`repro.parallel.shm` — tip/weight slices shipped once through a
    shared input arena, fixed-layout float64 result slots written in
    place, the pipe carrying only a tiny ready token per reply.  The
    command direction always uses the pipe (commands are tiny), pickled
    once per broadcast rather than once per worker.  Cumulative
    ``pipe_tx_bytes`` / ``pipe_rx_bytes`` / ``shm_rx_bytes`` counters
    feed the comms metrics.
    """

    def __init__(self, worker_args: list[tuple], comms: str = "pipe",
                 n_partitions: int = 0, stats_plane: WorkerStatsPlane | None = None):
        ctx = mp.get_context("fork")
        self.comms = comms
        self.n_partitions = n_partitions
        self.pipe_tx_bytes = 0
        self.pipe_rx_bytes = 0
        self.shm_rx_bytes = 0
        self._arena: SharedInputArena | None = None
        self._plane: SharedResultPlane | None = None
        if comms == "shm":
            # Both structures are created BEFORE fork so the children
            # inherit the mappings — nothing is pickled or re-attached
            # (attach-after-fork would double-register the segments with
            # the resource tracker on Python < 3.13).
            self._arena = SharedInputArena([args[0] for args in worker_args])
            self._plane = SharedResultPlane(len(worker_args), n_partitions)
            worker_args = [
                (self._arena.worker_slices[i], *args[1:])
                for i, args in enumerate(worker_args)
            ]
        # The live stats plane (created by the master, like the comms
        # structures above, so forked children inherit the mapping) is
        # NOT owned by the team: the engine keeps it readable after a
        # worker death so the post-mortem dump sees the final rows.
        worker_args = [
            (
                *args,
                self._plane.row(i) if self._plane is not None else None,
                stats_plane.row(i) if stats_plane is not None else None,
                i,
            )
            for i, args in enumerate(worker_args)
        ]
        self.conns = []
        self.procs = []
        self._closed = False
        for args in worker_args:
            parent, child = ctx.Pipe()
            proc = ctx.Process(
                target=_process_worker_main, args=(child, *args), daemon=True
            )
            proc.start()
            child.close()
            self.conns.append(parent)
            self.procs.append(proc)

    def _exchange(self, cmd: tuple, timed: bool) -> tuple[list, list[float]]:
        if self._closed:
            raise RuntimeError("worker team is closed")
        # One pickle for the whole team (not one per worker); byte-counted
        # send/recv so the comms metrics see real traffic.
        payload = pickle.dumps((cmd, timed))
        for rank, conn in enumerate(self.conns):
            try:
                conn.send_bytes(payload)
                self.pipe_tx_bytes += len(payload)
            except (BrokenPipeError, OSError) as exc:
                self.close()
                raise WorkerError(
                    rank, exc, "worker process died before dispatch; team terminated"
                ) from exc
        shapes = result_shapes(cmd) if self._plane is not None else None
        n = len(self.conns)
        results: list = [None] * n
        times = [0.0] * n
        failure: WorkerError | None = None
        for rank, conn in enumerate(self.conns):
            try:
                data = conn.recv_bytes()
            except (EOFError, BrokenPipeError, OSError) as exc:
                self.close()
                raise WorkerError(
                    rank, exc, "worker process died mid-command; team terminated"
                ) from exc
            self.pipe_rx_bytes += len(data)
            tag, payload, extra = pickle.loads(data)
            if tag == _ERR:
                if failure is None:
                    failure = WorkerError(rank, payload, extra)
            elif tag == _SHM:
                results[rank] = decode_results(
                    self._plane.row(rank), cmd, shapes, self.n_partitions
                )
                self.shm_rx_bytes += result_width(shapes, self.n_partitions) * 8
                times[rank] = extra
            else:
                results[rank] = payload
                times[rank] = extra
        if failure is not None:
            raise failure
        return results, times

    def broadcast(self, cmd: tuple) -> list:
        return self._exchange(cmd, timed=False)[0]

    def broadcast_timed(self, cmd: tuple) -> tuple[list, list[float]]:
        """As :meth:`broadcast`, plus each worker's execute() seconds."""
        return self._exchange(cmd, timed=True)

    def comms_stats(self) -> dict:
        """Cumulative bytes moved over each transport."""
        return {
            "comms": self.comms,
            "pipe_tx_bytes": self.pipe_tx_bytes,
            "pipe_rx_bytes": self.pipe_rx_bytes,
            "shm_rx_bytes": self.shm_rx_bytes,
        }

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for conn in self.conns:
            try:
                conn.send((("stop",), False))
                conn.close()
            except (BrokenPipeError, OSError):
                pass
        for proc in self.procs:
            proc.join(timeout=5)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5)
        # Unlink the shared segments last, after every worker is gone —
        # including the worker-death paths, which route through here.
        if self._arena is not None:
            self._arena.close()
        if self._plane is not None:
            self._plane.close()


@dataclass
class _PreparedBranch:
    token: int
    edge: int
    partitions: tuple[int, ...]


class ParallelPLK:
    """Master-side facade over a worker team.

    Parameters
    ----------
    data, tree, models, alphas:
        As for :class:`~repro.core.engine.PartitionedEngine`; the topology
        is fixed for the lifetime of the team (branch lengths and model
        parameters are mutable through commands).
    n_workers:
        Team size.
    backend:
        ``"threads"`` or ``"processes"``.
    distribution:
        Pattern-assignment policy — ``"cyclic"`` (RAxML default),
        ``"block"``, or the cost-aware ``"weighted"`` / ``"lpt"`` (built
        with the analytic datatype-cost model) — or a prebuilt
        :class:`~repro.parallel.balance.DistributionPlan` (e.g. a
        calibrated plan from a
        :class:`~repro.parallel.balance.Rebalancer`).  The resolved plan
        is exposed as ``self.plan`` and its policy name as
        ``self.distribution``.
    comms:
        Result transport for the ``processes`` backend: ``"pipe"``
        (pickled replies, the default) or ``"shm"`` (the zero-copy
        shared-memory plane of :mod:`repro.parallel.shm`).  The threads
        backend shares one address space and reports ``"local"``.
    kernel:
        Inner-loop implementation for every worker, by name from
        :data:`repro.plk.kernels.KERNEL_CHOICES` — ``"numpy"`` (the
        reference), ``"blocked"`` (cache-blocked BLAS), ``"numba"``
        (JIT, degrades to numpy when unavailable), or the repeat-aware
        composites ``"repeats"`` / ``"repeats+blocked"`` /
        ``"repeats+numba"`` (each worker builds repeat indexes for ITS
        OWN pattern slices post-fork; the result layout over the wire —
        ``comms=shm`` included — is unchanged, since compressed CLVs are
        expanded at the evaluate boundary inside the worker).  ``None``
        reads ``REPRO_KERNEL`` from the environment, defaulting to
        ``"numpy"``.  The canonical name is exposed as ``self.kernel``
        and stamped into profiles, traces and metrics.
    fuse_programs:
        When True (default), the batched optimizers issue fused
        :class:`~repro.parallel.program.Program` broadcasts — e.g.
        prepare + first derivative pass in ONE exchange, the whole
        monotonicity guard in another, vectorized parameter writes —
        cutting the barrier count per optimizer round by 2-4x.  Set
        False to reproduce the one-command-per-barrier schedule (the
        comms-overhead ablation baseline).
    profiler:
        A :class:`repro.perf.Profiler` to record per-command region
        timings (master wall time + each worker's execute time), or
        ``None`` for the zero-overhead :class:`repro.perf.NullProfiler`.
    tracer:
        A :class:`repro.obs.Tracer` turning every broadcast into a
        timestamped span on the master lane — plus, when a profiler is
        also attached, a busy span per worker lane — or ``None`` for the
        zero-overhead :class:`repro.obs.NullTracer` (the unobserved
        broadcast path is guarded by one attribute read; no method calls
        are added).
    metrics:
        A :class:`repro.obs.MetricsRegistry` counting broadcasts by region
        kind and (with a profiler attached) filling the barrier-wait and
        region-wall histograms, or ``None`` to discard.
    telemetry:
        A :class:`repro.obs.ConvergenceTelemetry` recording the batched
        optimizers' per-partition convergence vectors, or ``None`` to
        discard.
    live:
        The live telemetry plane (:mod:`repro.obs.live`): ``True`` for
        defaults, or a configured :class:`repro.obs.live.LiveTelemetry`.
        When enabled, every worker updates a lock-free shared-memory
        stats row (heartbeat, busy/wait seconds, commands, patterns)
        after each command, a :class:`~repro.obs.live.HealthMonitor` can
        sample stalls and live imbalance mid-run, and worker failures
        auto-dump the bounded :class:`~repro.obs.live.FlightRecorder`
        ring buffer as a post-mortem JSONL file.  ``None``/``False``
        (default) installs the zero-cost
        :class:`~repro.obs.live.NullLiveTelemetry`.
    """

    def __init__(
        self,
        data: PartitionedAlignment,
        tree: Tree,
        models: list,
        alphas: list[float],
        n_workers: int,
        backend: str = "threads",
        distribution: str | DistributionPlan = "cyclic",
        initial_lengths: np.ndarray | None = None,
        categories: int = 4,
        comms: str = "pipe",
        kernel: str | None = None,
        fuse_programs: bool = True,
        profiler=None,
        tracer=None,
        metrics=None,
        telemetry=None,
        live=None,
    ):
        if n_workers < 1:
            raise ValueError("need at least one worker")
        if backend not in ("threads", "processes"):
            raise ValueError("backend must be 'threads' or 'processes'")
        if comms not in ("pipe", "shm"):
            raise ValueError("comms must be 'pipe' or 'shm'")
        if comms == "shm" and backend != "processes":
            raise ValueError("comms='shm' requires the processes backend")
        kernel = normalize_kernel_name(kernel)
        if profiler is None:
            from ..perf import NullProfiler

            profiler = NullProfiler()
        self.profiler = profiler
        self.tracer = tracer if tracer is not None else NullTracer()
        self.metrics = metrics if metrics is not None else NullMetrics()
        self.telemetry = telemetry if telemetry is not None else NullTelemetry()
        # Imported lazily: obs.live depends on parallel.shm, so a
        # module-level import here would be circular at package load.
        from ..obs.live import LiveTelemetry, NullLiveTelemetry

        if not live:
            self.live = NullLiveTelemetry()
        elif live is True:
            self.live = LiveTelemetry()
        else:
            self.live = live
        self.n_partitions = data.n_partitions
        self.n_workers = n_workers
        self.backend = backend
        self.comms = comms if backend == "processes" else "local"
        self.kernel = kernel
        self.fuse_programs = bool(fuse_programs)
        self.commands_issued = 0
        self._token = itertools.count()
        if isinstance(distribution, DistributionPlan):
            if distribution.n_threads != n_workers:
                raise ValueError(
                    f"plan built for {distribution.n_threads} threads, "
                    f"team has {n_workers}"
                )
            self.plan = distribution
        else:
            self.plan = build_plan(
                PartitionLayout.from_alignment(data, categories),
                n_workers,
                distribution,
            )
        self.distribution = self.plan.policy
        # Cumulative per-worker busy seconds (total and by region kind),
        # feeding the metrics imbalance gauges on observed broadcasts.
        self._busy_total = np.zeros(n_workers)
        self._busy_kind: dict[str, np.ndarray] = {}
        worker_slices = [
            slice_partition_data(data, n_workers, w, self.plan)
            for w in range(n_workers)
        ]
        # The stats plane must exist BEFORE the team: thread workers bind
        # their row before the loops start, forked workers inherit the
        # mapping.  The engine owns it (closed in close(), after the
        # team) so post-mortems can still read the final rows.
        self._stats_plane: WorkerStatsPlane | None = None
        if self.live.enabled:
            self._stats_plane = WorkerStatsPlane(n_workers, kernel=self.kernel)
        if backend == "threads":
            # Backend name, not instance: each WorkerState resolves its
            # own kernel so per-instance scratch never crosses threads.
            states = [
                WorkerState(sl, tree.copy(), models, alphas, initial_lengths,
                            categories, kernel)
                for sl in worker_slices
            ]
            for w, state in enumerate(states):
                state.rank = w
                if self._stats_plane is not None:
                    state.attach_stats(self._stats_plane.row(w), w)
            self._team: _ThreadTeam | _ProcessTeam = _ThreadTeam(states)
        else:
            self._team = _ProcessTeam(
                [
                    (sl, tree.copy(), models, alphas, initial_lengths,
                     categories, kernel)
                    for sl in worker_slices
                ],
                comms=comms,
                n_partitions=self.n_partitions,
                stats_plane=self._stats_plane,
            )
        self.profiler.bind(backend=backend, n_workers=n_workers,
                           distribution=self.distribution, comms=self.comms,
                           kernel=self.kernel, live=self.live.enabled)
        self.metrics.counter(f"kernel.{self.kernel}").inc()
        if self.live.enabled:
            self.live.bind(self._stats_plane, metrics=self.metrics, run_config={
                "backend": backend, "comms": self.comms, "kernel": self.kernel,
                "distribution": self.distribution, "n_workers": n_workers,
                "n_partitions": self.n_partitions,
            })

    # ------------------------------------------------------------------

    def _broadcast(self, cmd: tuple) -> list:
        self.commands_issued += 1
        # Hot path: with the null defaults this adds two attribute reads
        # and zero method calls over the bare profiler dispatch.
        if self.live.enabled:
            return self._broadcast_live(cmd)
        if not (self.tracer.enabled or self.metrics.enabled):
            return self.profiler.broadcast(self._team, cmd)
        return self._broadcast_observed(cmd)

    def _broadcast_live(self, cmd: tuple) -> list:
        """One broadcast under the live plane: the flight recorder sees
        the dispatch and the barrier exit, and a :class:`WorkerError`
        (worker exception, or a dead process) triggers an automatic
        post-mortem dump of the ring buffer before re-raising."""
        live = self.live
        op, kind, n_cmds = describe_command(cmd)
        live.record("dispatch", op=op, kind=kind, n_commands=n_cmds)
        t0 = time.perf_counter()
        try:
            if self.tracer.enabled or self.metrics.enabled:
                results = self._broadcast_observed(cmd)
            else:
                results = self.profiler.broadcast(self._team, cmd)
        except WorkerError as exc:
            # EOFError/OSError originals mean the process died outright;
            # anything else is a worker-side exception shipped back.
            died = isinstance(exc.original, (EOFError, OSError))
            event = "worker_death" if died else "worker_error"
            live.record(event, rank=exc.rank, op=op,
                        error=repr(exc.original))
            live.postmortem(reason=event, rank=exc.rank)
            raise
        live.record("barrier_exit", op=op, kind=kind,
                    wall=time.perf_counter() - t0)
        return results

    def _broadcast_observed(self, cmd: tuple) -> list:
        """One observed broadcast: a master-lane span for the command, a
        busy span per worker lane and the barrier-wait histogram samples
        (the latter two only when a :class:`~repro.perf.Profiler` is
        attached — worker execute seconds come from its timed exchange).
        A fused program traces as ONE span (label ``prog(op1+op2+...)``)
        and counts as one broadcast of its dominant kind; the
        ``commands.total`` counter and ``commands_per_barrier`` histogram
        record how many worker commands the barrier amortized."""
        tracer, metrics, profiler = self.tracer, self.metrics, self.profiler
        op, kind, n_cmds = describe_command(cmd)
        n_before = len(profiler.records) if profiler.enabled else 0
        t0 = tracer.now() if tracer.enabled else 0.0
        results = profiler.broadcast(self._team, cmd)
        record = None
        if profiler.enabled and len(profiler.records) > n_before:
            record = profiler.records[-1]
        if tracer.enabled:
            tracer.add_span(op, kind, 0, t0, tracer.now() - t0)
            if record is not None:
                for w, busy in enumerate(record.busy):
                    if busy > 0.0:
                        tracer.add_span(op, kind, w + 1, t0, busy)
        if metrics.enabled:
            metrics.counter("broadcasts.total").inc()
            metrics.counter(f"broadcasts.{kind}").inc()
            metrics.counter("commands.total").inc(n_cmds)
            metrics.histogram(
                "commands_per_barrier", bounds=_COMMANDS_PER_BARRIER_BUCKETS
            ).observe(float(n_cmds))
            stats = getattr(self._team, "comms_stats", None)
            if stats is not None:
                stats = stats()
                metrics.gauge("comms.pipe_bytes").set(
                    stats["pipe_tx_bytes"] + stats["pipe_rx_bytes"]
                )
                metrics.gauge("comms.shm_bytes").set(stats["shm_rx_bytes"])
            if record is not None:
                metrics.histogram("region_wall_seconds").observe(record.wall)
                metrics.histogram("sync_seconds").observe(record.sync)
                wait = metrics.histogram("barrier_wait_seconds")
                for idle in record.idle:
                    wait.observe(idle)
                # Imbalance gauges: cumulative max/mean worker busy time,
                # overall and per region kind (1.0 = perfect balance).
                busy = np.asarray(record.busy)
                self._busy_total += busy
                kind_busy = self._busy_kind.setdefault(
                    kind, np.zeros(self.n_workers)
                )
                kind_busy += busy
                if self._busy_total.any():
                    metrics.gauge("imbalance").set(
                        imbalance_ratio(self._busy_total)
                    )
                if kind_busy.any():
                    metrics.gauge(f"imbalance.{kind}").set(
                        imbalance_ratio(kind_busy)
                    )
        return results

    def run_program(self, steps) -> list[list]:
        """Execute an ordered list of worker commands as ONE fused
        broadcast (a single barrier: the workers run the steps back to
        back and reply once).

        ``steps`` is a :class:`~repro.parallel.program.Program` or an
        iterable of command tuples.  Returns, per step, the list of
        per-worker partial results — exactly what ``len(steps)``
        separate broadcasts would have produced, minus the barriers.
        """
        if isinstance(steps, Program):
            steps = steps.steps
        steps = tuple(tuple(s) for s in steps)
        per_worker = self._broadcast(("prog", steps))
        return [[worker[i] for worker in per_worker] for i in range(len(steps))]

    def comms_stats(self) -> dict:
        """The team's cumulative bytes-moved counters."""
        return self._team.comms_stats()

    @property
    def closed(self) -> bool:
        """True once the worker team is torn down (a closed engine raises
        on any broadcast) — pool bookkeeping reads this, e.g. after a
        :class:`WorkerError` auto-terminated the team."""
        return self._team._closed

    def restore_parameters(
        self, lengths: np.ndarray, alphas: list[float]
    ) -> None:
        """Reset every branch length and every partition alpha in ONE
        fused program (a single barrier).

        A warm team reused across requests (``repro.serve``) must hand
        each job the same parameter state a cold engine starts from;
        replaying the snapshot through the normal command vocabulary
        keeps warm results bitwise-identical to one-shot runs.
        """
        steps = [
            ("set_bl", edge, float(value), None)
            for edge, value in enumerate(np.asarray(lengths, float))
        ]
        steps.append(
            (
                "set_alpha_vec",
                np.asarray(alphas, float),
                list(range(self.n_partitions)),
            )
        )
        self.run_program(steps)

    def close(self) -> None:
        self._team.close()
        self.live.close()
        # The engine owns the stats plane (not the team): it must outlive
        # a worker death so the post-mortem above could read final rows.
        if self._stats_plane is not None:
            self._stats_plane.close()
            self._stats_plane = None

    def __enter__(self) -> "ParallelPLK":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- reductions --------------------------------------------------------

    def loglikelihood(self, root_edge: int = 0) -> float:
        return float(sum(self._broadcast(("lnl", root_edge))))

    def partition_loglikelihoods(
        self, root_edge: int = 0, active: list[int] | None = None
    ) -> np.ndarray:
        active = list(range(self.n_partitions)) if active is None else active
        parts = self._broadcast(("lnl_parts", root_edge, active))
        return np.sum(parts, axis=0)

    def set_branch_length(self, edge: int, value: float, partition: int | None = None) -> None:
        self._broadcast(("set_bl", edge, value, partition))

    def set_alpha(self, partition: int, alpha: float) -> None:
        self._broadcast(("set_alpha", partition, alpha))

    def set_model(self, partition: int, model) -> None:
        self._broadcast(("set_model", partition, model))

    # -- branch optimization -------------------------------------------------

    def prepare_branch(self, edge: int, partitions: list[int]) -> _PreparedBranch:
        token = next(self._token)
        self._broadcast(("prepare", edge, token, list(partitions)))
        return _PreparedBranch(token=token, edge=edge, partitions=tuple(partitions))

    def branch_derivatives(
        self, handle: _PreparedBranch, z: np.ndarray, active: list[int]
    ) -> tuple[np.ndarray, np.ndarray]:
        parts = self._broadcast(("deriv", handle.token, np.asarray(z, float), active))
        d1 = np.sum([p[0] for p in parts], axis=0)
        d2 = np.sum([p[1] for p in parts], axis=0)
        return d1, d2

    def release(self, handle: _PreparedBranch) -> None:
        self._broadcast(("release", handle.token))

    def optimize_branch(
        self, edge: int, strategy: str = "new", z0: np.ndarray | None = None,
        ztol: float = 1e-6,
    ) -> np.ndarray:
        """Per-partition Newton-Raphson on one branch under the chosen
        strategy; returns the optimized per-partition lengths."""
        n = self.n_partitions
        if z0 is None:
            z0 = np.full(n, 0.1)
        if strategy == "new":
            z0 = np.asarray(z0, float)
            every = list(range(n))
            solver = BatchedNewton(_BRANCH_MIN, _BRANCH_MAX, ztol)
            first_eval = None
            if self.fuse_programs:
                # Fused opening exchange: sumtable setup AND the first
                # derivative pass in ONE broadcast/barrier.
                token = next(self._token)
                handle = _PreparedBranch(token=token, edge=edge, partitions=tuple(every))
                z_first = solver.initial_point(z0)
                _, deriv_parts = self.run_program(
                    (
                        ("prepare", edge, token, every),
                        ("deriv", token, z_first, every),
                    )
                )
                first_eval = (
                    np.sum([d[0] for d in deriv_parts], axis=0),
                    np.sum([d[1] for d in deriv_parts], axis=0),
                )
            else:
                handle = self.prepare_branch(edge, every)

            def fn(z: np.ndarray, active_mask: np.ndarray):
                active = [int(i) for i in np.flatnonzero(active_mask)]
                return self.branch_derivatives(handle, z, active)

            with self.tracer.span("optimize_branch", cat="optimizer",
                                  edge=edge, strategy="new"):
                res = solver.run(
                    fn, z0,
                    observer=self.telemetry.start("nr_branch", n),
                    first_eval=first_eval,
                )
            # Monotonicity guard: keep only improvements (matches the
            # sequential strategies).
            if self.fuse_programs:
                # Both guard evaluations and the workspace release in one
                # barrier; the accept/reject decision needs the reduced
                # sums, so the parameter write is a second (vectorized)
                # broadcast rather than a fourth program step.
                old_parts, new_parts, _ = self.run_program(
                    (
                        ("branch_lnl", handle.token, z0, every),
                        ("branch_lnl", handle.token, res.z, every),
                        ("release", handle.token),
                    )
                )
                old_lnl = np.sum(old_parts, axis=0)
                new_lnl = np.sum(new_parts, axis=0)
                out = np.where(new_lnl >= old_lnl, res.z, z0)
                self._broadcast(("set_bl_vec", edge, out))
            else:
                old_lnl = np.sum(
                    self._broadcast(("branch_lnl", handle.token, z0, every)),
                    axis=0,
                )
                new_lnl = np.sum(
                    self._broadcast(("branch_lnl", handle.token, res.z, every)), axis=0
                )
                self.release(handle)
                out = np.where(new_lnl >= old_lnl, res.z, z0)
                for p in range(n):
                    self.set_branch_length(edge, float(out[p]), p)
            return out
        if strategy == "old":
            out = np.zeros(n)
            for p in range(n):
                handle = self.prepare_branch(edge, [p])

                def fn(z: float, _p: int = p, _h=handle):
                    d1, d2 = self.branch_derivatives(_h, np.full(n, z), [_p])
                    return float(d1[_p]), float(d2[_p])

                with self.tracer.span("optimize_branch", cat="optimizer",
                                      edge=edge, strategy="old", partition=p):
                    z, _, _ = newton_optimize(
                        fn, float(z0[p]), _BRANCH_MIN, _BRANCH_MAX, ztol
                    )
                zs_old = np.full(n, float(z0[p]))
                zs_new = np.full(n, z)
                old_lnl = np.sum(
                    self._broadcast(("branch_lnl", handle.token, zs_old, [p])), axis=0
                )[p]
                new_lnl = np.sum(
                    self._broadcast(("branch_lnl", handle.token, zs_new, [p])), axis=0
                )[p]
                self.release(handle)
                if new_lnl < old_lnl:
                    z = float(z0[p])
                self.set_branch_length(edge, z, p)
                out[p] = z
            return out
        raise ValueError(f"unknown strategy {strategy!r}")

    def optimize_branches(
        self, edges: list[int], strategy: str = "new",
        lengths0: np.ndarray | None = None,
    ) -> np.ndarray:
        """Optimize a set of branches once each; returns (len(edges), P)."""
        out = np.zeros((len(edges), self.n_partitions))
        for i, edge in enumerate(edges):
            z0 = None if lengths0 is None else lengths0[i]
            out[i] = self.optimize_branch(edge, strategy, z0)
        return out

    # -- alpha optimization ---------------------------------------------------

    def optimize_alpha(
        self, strategy: str = "new", guess: np.ndarray | None = None,
        xtol: float = 1e-3, root_edge: int = 0,
    ) -> np.ndarray:
        """Per-partition Brent on the Gamma shape under the chosen
        strategy; returns the optimized alphas."""
        n = self.n_partitions
        if guess is None:
            guess = np.ones(n)
        if strategy == "new":
            solver = BatchedBrent(np.full(n, _ALPHA_MIN), np.full(n, _ALPHA_MAX), xtol)

            def fn(x: np.ndarray, active_mask: np.ndarray) -> np.ndarray:
                active = [int(i) for i in np.flatnonzero(active_mask)]
                parts = self._broadcast(("eval_alpha", np.asarray(x, float), active, root_edge))
                return np.sum(parts, axis=0)

            with self.tracer.span("optimize_alpha", cat="optimizer", strategy="new"):
                res = solver.run(
                    fn, guess=np.asarray(guess, float),
                    observer=self.telemetry.start("brent_alpha", n),
                )
            if self.fuse_programs:
                # One vectorized write instead of P set_alpha broadcasts.
                self._broadcast(("set_alpha_vec", res.x, list(range(n))))
            else:
                for p in range(n):
                    self.set_alpha(p, float(res.x[p]))
            return res.x
        if strategy == "old":
            out = np.zeros(n)
            for p in range(n):
                solver = BatchedBrent(np.array([_ALPHA_MIN]), np.array([_ALPHA_MAX]), xtol)

                def fn(x: np.ndarray, active_mask: np.ndarray, _p: int = p) -> np.ndarray:
                    xs = np.zeros(n)
                    xs[_p] = float(x[0])
                    parts = self._broadcast(("eval_alpha", xs, [_p], root_edge))
                    return np.array([np.sum(parts, axis=0)[_p]])

                with self.tracer.span("optimize_alpha", cat="optimizer",
                                      strategy="old", partition=p):
                    res = solver.run(fn, guess=np.array([float(guess[p])]))
                self.set_alpha(p, float(res.x[0]))
                out[p] = res.x[0]
            return out
        raise ValueError(f"unknown strategy {strategy!r}")
