"""Pattern-to-thread distribution policies (paper Fig. 1 and Section IV).

RAxML assigns the ``m'`` global alignment patterns to T worker threads
*cyclically* (pattern i goes to thread ``i mod T``), "mainly to allow for
better load-balance in phylogenomic datasets that can contain DNA as well
as AA data": interleaving guarantees every thread receives an equal mix of
cheap DNA and 25x-more-expensive protein columns, and every partition's
patterns are spread almost evenly over all threads regardless of where the
partition sits in the alignment.

The alternative *block* policy (thread t owns one contiguous chunk of the
global pattern vector) equalizes raw pattern counts but concentrates each
partition — and each datatype — on few threads, which is catastrophic for
per-partition operations; it exists here as the ablation baseline.

Two further *cost-aware* policies — ``weighted`` (cost-aware cyclic) and
``lpt`` (longest-processing-time greedy bin packing) — weigh patterns by a
per-partition cost model instead of treating every pattern as equal.  They
need the *whole* partition layout at once (a pattern's placement depends
on every other partition's cost), so they are built as a global
:class:`~repro.parallel.balance.DistributionPlan` rather than through the
per-partition helpers in this module; see :mod:`repro.parallel.balance`.

Conventions shared by every helper here (units are **counts**, not
seconds):

* ``offset`` — the partition's first global pattern index (>= 0);
* ``length`` — the partition's pattern count ``m'_p`` (>= 0; zero-length
  partitions are valid and yield empty slices / zero counts);
* ``total`` — the global distinct-pattern count ``m'`` (>= 0);
* ``n_threads`` — the team size T (>= 1; T larger than ``total`` is valid
  and simply leaves trailing threads with no patterns).
"""
from __future__ import annotations

import numpy as np

__all__ = [
    "DISTRIBUTIONS",
    "STATIC_DISTRIBUTIONS",
    "cyclic_partition_counts",
    "block_partition_counts",
    "partition_thread_counts",
    "cyclic_indices",
    "block_indices",
]

#: Every known pattern-distribution policy.  The first two are *static*
#: (a thread's share of a partition depends only on that partition's
#: geometry); the last two are *cost-aware* and require a global
#: :class:`~repro.parallel.balance.DistributionPlan`.
DISTRIBUTIONS = ("cyclic", "block", "weighted", "lpt")

#: Policies computable partition-by-partition with the helpers below.
STATIC_DISTRIBUTIONS = ("cyclic", "block")


def _check_geometry(offset: int, length: int, n_threads: int, total: int | None = None) -> None:
    """Shared argument validation: counts must be non-negative, T >= 1."""
    if n_threads < 1:
        raise ValueError("need at least one thread")
    if offset < 0 or length < 0:
        raise ValueError("offset and length must be non-negative")
    if total is not None:
        if total < 0:
            raise ValueError("total pattern count must be non-negative")
        if offset + length > total:
            raise ValueError(
                f"partition [{offset}, {offset + length}) exceeds total {total}"
            )


def cyclic_partition_counts(offset: int, length: int, n_threads: int) -> np.ndarray:
    """Per-thread pattern **counts** for a partition spanning global
    indices ``[offset, offset + length)`` under cyclic distribution
    (pattern at global index g goes to thread ``g % n_threads``).

    Counts differ by at most one across threads; a zero-``length``
    partition yields all zeros.

    >>> cyclic_partition_counts(0, 10, 4).tolist()
    [3, 3, 2, 2]
    >>> cyclic_partition_counts(3, 10, 4).tolist()   # offset rotates the remainder
    [3, 2, 2, 3]
    >>> cyclic_partition_counts(0, 0, 4).tolist()    # empty partition
    [0, 0, 0, 0]
    >>> int(cyclic_partition_counts(0, 3, 16).sum())  # m'_p < T: 13 threads idle
    3
    """
    _check_geometry(offset, length, n_threads)
    t = np.arange(n_threads)
    # #{i in [offset, offset+length) : i % T == t}
    first = (t - offset) % n_threads
    return np.maximum((length - first + n_threads - 1) // n_threads, 0)


def block_partition_counts(
    offset: int, length: int, total: int, n_threads: int
) -> np.ndarray:
    """Per-thread pattern **counts** under block distribution: thread t
    owns the global range ``[t * ceil(total/T), (t+1) * ceil(total/T))``.

    A zero-``length`` partition (or a zero-``total`` alignment) yields all
    zeros; ``n_threads > total`` leaves trailing threads empty.

    >>> block_partition_counts(0, 10, 100, 8).tolist()   # one 13-wide chunk
    [10, 0, 0, 0, 0, 0, 0, 0]
    >>> block_partition_counts(40, 60, 100, 8).tolist()
    [0, 0, 0, 12, 13, 13, 13, 9]
    >>> block_partition_counts(0, 0, 0, 4).tolist()      # empty alignment
    [0, 0, 0, 0]
    >>> block_partition_counts(0, 2, 2, 8).tolist()      # T > total
    [1, 1, 0, 0, 0, 0, 0, 0]
    """
    _check_geometry(offset, length, n_threads, total)
    if total == 0:
        return np.zeros(n_threads, dtype=np.int64)
    chunk = -(-total // n_threads)
    t = np.arange(n_threads)
    lo = np.minimum(t * chunk, total)
    hi = np.minimum(lo + chunk, total)
    return np.maximum(np.minimum(hi, offset + length) - np.maximum(lo, offset), 0)


def partition_thread_counts(
    policy: str, offset: int, length: int, total: int, n_threads: int
) -> np.ndarray:
    """Dispatch on a *static* distribution policy name.

    The cost-aware policies (``weighted``, ``lpt``) cannot be computed for
    one partition in isolation — a thread's share depends on every other
    partition's cost — so asking for them here raises and points at
    :func:`repro.parallel.balance.build_plan`.

    >>> int(partition_thread_counts("cyclic", 0, 10, 100, 4).sum())
    10
    >>> int(partition_thread_counts("block", 0, 10, 100, 4).sum())
    10
    """
    if policy == "cyclic":
        return cyclic_partition_counts(offset, length, n_threads)
    if policy == "block":
        return block_partition_counts(offset, length, total, n_threads)
    if policy in DISTRIBUTIONS:
        raise ValueError(
            f"policy {policy!r} is cost-aware and needs the whole layout; "
            "build a repro.parallel.balance.DistributionPlan via build_plan()"
        )
    raise ValueError(f"unknown distribution {policy!r}; known: {DISTRIBUTIONS}")


def cyclic_indices(offset: int, length: int, n_threads: int, thread: int) -> np.ndarray:
    """Partition-local pattern indices owned by ``thread`` under the
    cyclic policy (used by the real parallel backends to slice tip data).

    >>> cyclic_indices(0, 10, 4, 1).tolist()
    [1, 5, 9]
    >>> cyclic_indices(3, 10, 4, 0).tolist()   # global index g has g % 4 == 0
    [1, 5, 9]
    >>> cyclic_indices(0, 0, 4, 2).tolist()    # empty partition: empty slice
    []
    """
    _check_geometry(offset, length, n_threads)
    if not 0 <= thread < n_threads:
        raise ValueError("thread id out of range")
    first = (thread - offset) % n_threads
    return np.arange(first, length, n_threads)


def block_indices(
    offset: int, length: int, total: int, n_threads: int, thread: int
) -> np.ndarray:
    """Partition-local pattern indices owned by ``thread`` under the block
    policy.

    >>> block_indices(40, 60, 100, 8, 4).tolist()
    [12, 13, 14, 15, 16, 17, 18, 19, 20, 21, 22, 23, 24]
    >>> block_indices(0, 0, 0, 4, 0).tolist()   # empty alignment: empty slice
    []
    """
    _check_geometry(offset, length, n_threads, total)
    if not 0 <= thread < n_threads:
        raise ValueError("thread id out of range")
    if total == 0:
        return np.arange(0)
    chunk = -(-total // n_threads)
    lo = min(thread * chunk, total)
    hi = min(lo + chunk, total)
    start = max(lo - offset, 0)
    stop = max(min(hi - offset, length), 0)
    return np.arange(start, stop)
