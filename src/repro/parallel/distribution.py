"""Pattern-to-thread distribution policies (paper Fig. 1 and Section IV).

RAxML assigns the ``m'`` global alignment patterns to T worker threads
*cyclically* (pattern i goes to thread ``i mod T``), "mainly to allow for
better load-balance in phylogenomic datasets that can contain DNA as well
as AA data": interleaving guarantees every thread receives an equal mix of
cheap DNA and 25x-more-expensive protein columns, and every partition's
patterns are spread almost evenly over all threads regardless of where the
partition sits in the alignment.

The alternative *block* policy (thread t owns one contiguous chunk of the
global pattern vector) equalizes raw pattern counts but concentrates each
partition — and each datatype — on few threads, which is catastrophic for
per-partition operations; it exists here as the ablation baseline.
"""
from __future__ import annotations

import numpy as np

__all__ = [
    "DISTRIBUTIONS",
    "cyclic_partition_counts",
    "block_partition_counts",
    "partition_thread_counts",
    "cyclic_indices",
    "block_indices",
]

DISTRIBUTIONS = ("cyclic", "block")


def cyclic_partition_counts(offset: int, length: int, n_threads: int) -> np.ndarray:
    """How many patterns of a partition spanning global indices
    ``[offset, offset + length)`` each thread owns under cyclic
    distribution.  Counts differ by at most one across threads."""
    if n_threads < 1:
        raise ValueError("need at least one thread")
    t = np.arange(n_threads)
    # #{i in [offset, offset+length) : i % T == t}
    first = (t - offset) % n_threads
    return np.maximum((length - first + n_threads - 1) // n_threads, 0)


def block_partition_counts(
    offset: int, length: int, total: int, n_threads: int
) -> np.ndarray:
    """Per-thread pattern counts under block distribution: thread t owns
    the global range ``[t * ceil(total/T), (t+1) * ceil(total/T))``."""
    if n_threads < 1:
        raise ValueError("need at least one thread")
    if total < 1:
        raise ValueError("need a positive total pattern count")
    chunk = -(-total // n_threads)
    t = np.arange(n_threads)
    lo = np.minimum(t * chunk, total)
    hi = np.minimum(lo + chunk, total)
    return np.maximum(np.minimum(hi, offset + length) - np.maximum(lo, offset), 0)


def partition_thread_counts(
    policy: str, offset: int, length: int, total: int, n_threads: int
) -> np.ndarray:
    """Dispatch on the distribution policy name."""
    if policy == "cyclic":
        return cyclic_partition_counts(offset, length, n_threads)
    if policy == "block":
        return block_partition_counts(offset, length, total, n_threads)
    raise ValueError(f"unknown distribution {policy!r}; known: {DISTRIBUTIONS}")


def cyclic_indices(offset: int, length: int, n_threads: int, thread: int) -> np.ndarray:
    """Partition-local indices owned by ``thread`` under cyclic policy
    (used by the real parallel backends to slice tip data)."""
    if not 0 <= thread < n_threads:
        raise ValueError("thread id out of range")
    first = (thread - offset) % n_threads
    return np.arange(first, length, n_threads)


def block_indices(
    offset: int, length: int, total: int, n_threads: int, thread: int
) -> np.ndarray:
    """Partition-local indices owned by ``thread`` under block policy."""
    if not 0 <= thread < n_threads:
        raise ValueError("thread id out of range")
    chunk = -(-total // n_threads)
    lo = min(thread * chunk, total)
    hi = min(lo + chunk, total)
    start = max(lo - offset, 0)
    stop = max(min(hi - offset, length), 0)
    return np.arange(start, stop)
