"""Runtime profiling of the real parallel backends: per-region wall and
per-worker busy times, the derived barrier-wait (load-imbalance)
decomposition, and comparison against :mod:`repro.simmachine`
predictions.  Opt-in: pass a :class:`Profiler` to
:class:`~repro.parallel.ParallelPLK`; the default :class:`NullProfiler`
leaves the broadcast hot path untouched."""
from .compare import ProfileComparison, compare_decompositions, compare_strategies
from .profile import CommandRecord, RunProfile
from .profiler import NullProfiler, Profiler

__all__ = [
    "CommandRecord",
    "NullProfiler",
    "ProfileComparison",
    "Profiler",
    "RunProfile",
    "compare_decompositions",
    "compare_strategies",
]
