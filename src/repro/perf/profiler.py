"""Opt-in instrumentation of the real parallel backends.

:class:`Profiler` sits on the master's broadcast path
(:meth:`repro.parallel.ParallelPLK._broadcast` delegates to
``profiler.broadcast(team, cmd)``): it wall-clocks every command and asks
the team for the *timed* variant of the exchange, in which each worker
additionally reports its own ``execute()`` seconds.  :class:`NullProfiler`
is the default and keeps the hot path untouched — one no-op method call,
no timing, no per-worker clock reads.

Typical use::

    from repro.parallel import ParallelPLK
    from repro.perf import Profiler

    prof = Profiler()
    with ParallelPLK(data, tree, models, alphas, 4,
                     backend="processes", profiler=prof) as team:
        team.optimize_branches(range(6), "new")
    profile = prof.profile()          # RunProfile
    print(profile.summary())
    profile.save("newpar.json")
"""
from __future__ import annotations

import time

from ..core.trace import describe_command
from .profile import CommandRecord, RunProfile

__all__ = ["Profiler", "NullProfiler"]


class NullProfiler:
    """Discards everything; the zero-overhead default.

    Valid anywhere a :class:`Profiler` is expected — ``broadcast`` simply
    forwards to the team's untimed exchange.
    """

    enabled = False

    def bind(self, **meta) -> None:  # noqa: D102
        pass

    def broadcast(self, team, cmd: tuple) -> list:  # noqa: D102
        return team.broadcast(cmd)


class Profiler:
    """Records one :class:`~repro.perf.profile.CommandRecord` per broadcast.

    A profiler instance is bound to one team (``ParallelPLK`` calls
    :meth:`bind` with the backend geometry at construction) but survives
    the team: call :meth:`profile` after the run — or mid-run — to get the
    accumulated :class:`~repro.perf.profile.RunProfile`.
    """

    enabled = True

    def __init__(self, meta: dict | None = None):
        self.records: list[CommandRecord] = []
        self.backend = ""
        self.n_workers = 0
        self.distribution = "cyclic"
        self.comms = "pipe"
        self.kernel = "numpy"
        self.live = False
        self.meta = dict(meta or {})

    def bind(self, *, backend: str, n_workers: int, distribution: str,
             comms: str = "pipe", kernel: str = "numpy",
             live: bool = False) -> None:
        """Called by :class:`~repro.parallel.ParallelPLK` at team startup."""
        self.backend = backend
        self.n_workers = n_workers
        self.distribution = distribution
        self.comms = comms
        self.kernel = kernel
        self.live = live

    def broadcast(self, team, cmd: tuple) -> list:
        # A fused program records as ONE region (one barrier) labelled
        # "prog(op1+op2+...)" carrying its worker-command count, exactly
        # mirroring the simulator's one-sync-per-region accounting.
        op, kind, n_cmds = describe_command(cmd)
        t0 = time.perf_counter()
        results, busy = team.broadcast_timed(cmd)
        wall = time.perf_counter() - t0
        self.records.append(
            CommandRecord(op=op, kind=kind, wall=wall, busy=tuple(busy),
                          n_commands=n_cmds)
        )
        return results

    def reset(self) -> None:
        """Drop accumulated records (e.g. after a warmup pass)."""
        self.records.clear()

    def profile(self) -> RunProfile:
        """The accumulated measurements as a :class:`RunProfile`."""
        meta = dict(self.meta)
        meta.setdefault("comms", self.comms)
        meta.setdefault("kernel", self.kernel)
        meta.setdefault("live", self.live)
        return RunProfile(
            backend=self.backend,
            n_workers=self.n_workers,
            distribution=self.distribution,
            records=list(self.records),
            meta=meta,
        )
