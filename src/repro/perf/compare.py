"""Predicted-vs-measured and strategy-vs-strategy profile comparisons.

The simulator predicts a per-thread busy/idle/sync decomposition from a
captured trace (:func:`repro.simmachine.simulate_trace`); the profiler
measures the same decomposition on the real backends
(:class:`repro.perf.RunProfile`).  Both expose ``decomposition()`` with
identical keys, so comparing a prediction against a measurement — the
paper's implicit validation step — is one function call.
"""
from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .profile import RunProfile

__all__ = ["ProfileComparison", "compare_decompositions", "compare_strategies"]


def _decomposition(obj) -> dict:
    """Accept a RunProfile, a SimulationResult, or a raw decomposition."""
    if isinstance(obj, dict):
        return obj
    return obj.decomposition()


@dataclass
class ProfileComparison:
    """Two busy/idle/sync decompositions side by side.

    ``a`` and ``b`` are decomposition dicts (see
    ``RunProfile.decomposition`` / ``SimulationResult.decomposition``);
    ``labels`` names them in reports (e.g. ``("measured", "predicted")``
    or ``("old", "new")``).
    """

    a: dict
    b: dict
    labels: tuple[str, str]

    @property
    def efficiency_ratio(self) -> float:
        """``b``'s parallel efficiency over ``a``'s."""
        ea = self.a["efficiency"]
        return self.b["efficiency"] / ea if ea > 0 else float("inf")

    @property
    def speedup(self) -> float:
        """``a``'s total wall time over ``b``'s (>1 means ``b`` faster)."""
        tb = self.b["total_seconds"]
        return self.a["total_seconds"] / tb if tb > 0 else float("inf")

    def summary(self) -> str:
        la, lb = self.labels
        width = max(len(la), len(lb))
        lines = [
            f"{'':>{width}}  {'total':>10} {'busy':>10} {'idle':>10} "
            f"{'sync':>10} {'eff':>7}"
        ]
        for label, d in ((la, self.a), (lb, self.b)):
            busy = float(np.sum(d["busy_seconds"]))
            idle = float(np.sum(d["idle_seconds"]))
            lines.append(
                f"{label:>{width}}  {d['total_seconds']*1e3:>8.1f}ms "
                f"{busy*1e3:>8.1f}ms {idle*1e3:>8.1f}ms "
                f"{d['sync_seconds']*1e3:>8.1f}ms {d['efficiency']:>7.1%}"
            )
        lines.append(
            f"{lb} vs {la}: {self.speedup:.2f}x wall, "
            f"{self.efficiency_ratio:.2f}x efficiency"
        )
        return "\n".join(lines)


def compare_decompositions(
    a, b, labels: tuple[str, str] = ("a", "b")
) -> ProfileComparison:
    """Compare any two decomposition carriers (RunProfile or
    SimulationResult or dict) — e.g. measured vs simulator-predicted."""
    return ProfileComparison(_decomposition(a), _decomposition(b), labels)


def compare_strategies(old: RunProfile, new: RunProfile) -> ProfileComparison:
    """oldPAR vs newPAR measured profiles (the paper's headline table)."""
    return compare_decompositions(old, new, labels=("old", "new"))
