"""Measured run profiles: the real-machine analogue of a simulator replay.

A :class:`RunProfile` holds one :class:`CommandRecord` per master broadcast
(= one parallel region of :mod:`repro.core.trace`'s vocabulary): the
master-observed wall time plus each worker's own ``execute()`` seconds.
From those two measurements the paper's busy/idle decomposition is derived
per region:

``busy[w]``
    worker ``w``'s execute time — productive kernel work;
``span``
    ``max(busy)`` — the region lasts until its slowest worker finishes;
``idle[w]``
    ``span - busy[w]`` — barrier-wait caused by load imbalance, the
    quantity Figures 3–6 of the paper decompose;
``sync``
    ``wall - span`` — dispatch + barrier/IPC overhead, charged to the
    region as a whole (it is the same for every worker).

Per worker, ``busy + idle + sync == wall`` exactly, so profile totals use
the same field names and semantics as
:class:`repro.simmachine.simulator.SimulationResult` — predicted and
measured decompositions are directly comparable (see
:mod:`repro.perf.compare`).
"""
from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..core.trace import REGION_KINDS

__all__ = ["CommandRecord", "RunProfile"]


@dataclass(frozen=True)
class CommandRecord:
    """Timing of one broadcast command (one parallel region).

    Attributes
    ----------
    op:
        The worker command name (``"deriv"``, ``"lnl"``, ...).
    kind:
        Its region kind from the shared trace vocabulary
        (:data:`repro.core.trace.COMMAND_KINDS`).
    wall:
        Master-observed wall seconds, dispatch to reduction.
    busy:
        Per-worker ``execute()`` seconds, length ``n_workers``.
    n_commands:
        Worker commands this broadcast executed — 1 for a plain command,
        ``len(steps)`` for a fused :class:`~repro.parallel.program.Program`
        (one region/barrier amortized over several commands).
    """

    op: str
    kind: str
    wall: float
    busy: tuple[float, ...]
    n_commands: int = 1

    @property
    def span(self) -> float:
        """Seconds until the slowest worker finished its share."""
        return max(self.busy) if self.busy else 0.0

    @property
    def idle(self) -> tuple[float, ...]:
        """Per-worker barrier-wait (imbalance) seconds: ``span - busy``."""
        span = self.span
        return tuple(span - b for b in self.busy)

    @property
    def sync(self) -> float:
        """Dispatch + barrier/IPC seconds: ``wall - span`` (floored at 0)."""
        return max(self.wall - self.span, 0.0)

    def to_dict(self) -> dict:
        return {
            "op": self.op,
            "kind": self.kind,
            "wall": self.wall,
            "busy": list(self.busy),
            "n_commands": self.n_commands,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "CommandRecord":
        return cls(
            op=d["op"], kind=d["kind"], wall=float(d["wall"]),
            busy=tuple(float(b) for b in d["busy"]),
            n_commands=int(d.get("n_commands", 1)),
        )


@dataclass
class RunProfile:
    """Per-region timings of one real parallel run plus derived summaries.

    Exposes the same vocabulary as the simulator's
    :class:`~repro.simmachine.simulator.SimulationResult`:
    ``total_seconds``, ``busy_seconds`` (per worker), ``idle_seconds``
    (per worker), ``sync_seconds`` and ``efficiency``.
    """

    backend: str
    n_workers: int
    distribution: str = "cyclic"
    records: list[CommandRecord] = field(default_factory=list)
    meta: dict = field(default_factory=dict)

    # -- totals (simulator vocabulary) ------------------------------------

    @property
    def n_regions(self) -> int:
        return len(self.records)

    @property
    def n_commands(self) -> int:
        """Worker commands executed (>= ``n_regions``: fused programs pack
        several commands into one region/barrier)."""
        return sum(r.n_commands for r in self.records)

    @property
    def commands_per_barrier(self) -> float:
        """Mean worker commands amortized per broadcast barrier."""
        return self.n_commands / self.n_regions if self.records else 0.0

    @property
    def total_seconds(self) -> float:
        """Sum of per-region wall times (time spent inside broadcasts)."""
        return float(sum(r.wall for r in self.records))

    @property
    def busy_seconds(self) -> np.ndarray:
        """(W,) productive execute seconds per worker."""
        out = np.zeros(self.n_workers)
        for r in self.records:
            out += np.asarray(r.busy)
        return out

    @property
    def idle_seconds(self) -> np.ndarray:
        """(W,) barrier-wait seconds per worker (waiting for the slowest)."""
        out = np.zeros(self.n_workers)
        for r in self.records:
            out += np.asarray(r.idle)
        return out

    @property
    def sync_seconds(self) -> float:
        """Total dispatch + barrier/IPC seconds across regions."""
        return float(sum(r.sync for r in self.records))

    @property
    def efficiency(self) -> float:
        """Mean busy fraction across workers (1.0 = perfect balance and
        zero synchronization cost) — the simulator's definition."""
        denom = self.total_seconds * self.n_workers
        return float(self.busy_seconds.sum() / denom) if denom > 0 else 0.0

    @property
    def load_balance(self) -> float:
        """Mean worker busy time over max worker busy time (1.0 = every
        worker did identical work; ignores synchronization cost)."""
        busy = self.busy_seconds
        top = float(busy.max()) if busy.size else 0.0
        return float(busy.mean() / top) if top > 0 else 0.0

    @property
    def imbalance(self) -> float:
        """Max over mean per-worker busy seconds (1.0 = perfect balance) —
        the reciprocal view of :attr:`load_balance`, matching
        :attr:`repro.simmachine.simulator.SimulationResult.imbalance` so a
        measured profile and a simulated prediction report the same load
        metric."""
        from ..parallel.balance import imbalance_ratio

        return imbalance_ratio(self.busy_seconds)

    def kind_seconds(self) -> dict[str, float]:
        """Wall seconds per region kind (newview/sumtable/.../control)."""
        out = {k: 0.0 for k in REGION_KINDS}
        for r in self.records:
            out[r.kind] = out.get(r.kind, 0.0) + r.wall
        return {k: v for k, v in out.items() if v > 0.0}

    def decomposition(self) -> dict:
        """The shared predicted-vs-measured comparison shape (also
        implemented by ``SimulationResult.decomposition``)."""
        return {
            "n_workers": self.n_workers,
            "total_seconds": self.total_seconds,
            "busy_seconds": [float(b) for b in self.busy_seconds],
            "idle_seconds": [float(i) for i in self.idle_seconds],
            "sync_seconds": self.sync_seconds,
            "efficiency": self.efficiency,
        }

    # -- reporting ---------------------------------------------------------

    def summary(self) -> str:
        busy = self.busy_seconds
        idle = self.idle_seconds
        lines = [
            f"{self.backend} x{self.n_workers} ({self.distribution}): "
            f"{self.n_regions} regions, wall {self.total_seconds*1e3:.1f} ms, "
            f"sync {self.sync_seconds*1e3:.1f} ms, "
            f"efficiency {self.efficiency:.1%}, "
            f"load balance {self.load_balance:.1%}",
            f"  barriers: {self.n_regions}  commands: {self.n_commands}  "
            f"({self.commands_per_barrier:.2f} commands/barrier)",
        ]
        for w in range(self.n_workers):
            lines.append(
                f"  worker {w}: busy {busy[w]*1e3:8.1f} ms   "
                f"idle {idle[w]*1e3:8.1f} ms"
            )
        kinds = self.kind_seconds()
        if kinds:
            lines.append(
                "  by kind: "
                + "  ".join(f"{k}={v*1e3:.1f}ms" for k, v in sorted(kinds.items()))
            )
        return "\n".join(lines)

    # -- (de)serialization -------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "backend": self.backend,
            "n_workers": self.n_workers,
            "distribution": self.distribution,
            "meta": self.meta,
            "summary": self.decomposition(),
            "records": [r.to_dict() for r in self.records],
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def save(self, path: str | Path) -> None:
        Path(path).write_text(self.to_json() + "\n")

    @classmethod
    def from_dict(cls, d: dict) -> "RunProfile":
        return cls(
            backend=d["backend"],
            n_workers=int(d["n_workers"]),
            distribution=d.get("distribution", "cyclic"),
            records=[CommandRecord.from_dict(r) for r in d["records"]],
            meta=d.get("meta", {}),
        )

    @classmethod
    def load(cls, path: str | Path) -> "RunProfile":
        return cls.from_dict(json.loads(Path(path).read_text()))
