"""Bayesian MCMC layer (paper Section IV, "Implications for Bayesian
Inference"): Metropolis-Hastings over partitioned models with the two
proposal-scheduling modes the paper contrasts, plus Metropolis coupling."""
from .chain import (
    BayesianChain,
    ChainSamples,
    MetropolisCoupledSampler,
    SCHEDULING_MODES,
)
from .priors import PriorSet, log_exponential, log_lognormal
from .proposals import MultiplierProposal, reflect

__all__ = [
    "BayesianChain",
    "ChainSamples",
    "MetropolisCoupledSampler",
    "MultiplierProposal",
    "PriorSet",
    "SCHEDULING_MODES",
    "log_exponential",
    "log_lognormal",
    "reflect",
]
