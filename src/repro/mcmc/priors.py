"""Priors for the Bayesian layer (MrBayes-style defaults).

* branch lengths: i.i.d. Exponential(rate = 1 / mean), mean 0.1;
* Gamma shape alpha: Exponential(1.0) truncated to the kernel's feasible
  interval (MrBayes default is Uniform/Exponential depending on version;
  exponential keeps the density proper);
* GTR exchangeabilities: i.i.d. LogNormal(0, 1) on each free rate (a
  convenient proper prior over the positive reals).

All functions return LOG densities and broadcast over numpy arrays.
"""
from __future__ import annotations

import numpy as np

__all__ = ["log_exponential", "log_lognormal", "PriorSet"]


def log_exponential(x: np.ndarray, mean: float) -> np.ndarray:
    """Log density of Exponential with the given mean."""
    rate = 1.0 / mean
    x = np.asarray(x, dtype=np.float64)
    return np.where(x >= 0, np.log(rate) - rate * x, -np.inf)


def log_lognormal(x: np.ndarray, mu: float = 0.0, sigma: float = 1.0) -> np.ndarray:
    x = np.asarray(x, dtype=np.float64)
    with np.errstate(divide="ignore", invalid="ignore"):
        logx = np.log(x)
        out = (
            -logx
            - np.log(sigma * np.sqrt(2 * np.pi))
            - 0.5 * ((logx - mu) / sigma) ** 2
        )
    return np.where(x > 0, out, -np.inf)


class PriorSet:
    """Bundles the per-parameter-type log priors used by the chain."""

    def __init__(
        self,
        branch_mean: float = 0.1,
        alpha_mean: float = 1.0,
        rate_sigma: float = 1.0,
    ):
        self.branch_mean = branch_mean
        self.alpha_mean = alpha_mean
        self.rate_sigma = rate_sigma

    def branch(self, lengths: np.ndarray) -> np.ndarray:
        return log_exponential(lengths, self.branch_mean)

    def alpha(self, alpha: np.ndarray) -> np.ndarray:
        return log_exponential(alpha, self.alpha_mean)

    def rate(self, rate: np.ndarray) -> np.ndarray:
        return log_lognormal(rate, 0.0, self.rate_sigma)
