"""Metropolis-Hastings proposals for Bayesian phylogenetics.

The workhorse is the *multiplier* (log-sliding-window) proposal used by
MrBayes for positive parameters: ``x' = x * exp(lambda * (u - 0.5))`` with
Hastings ratio ``x'/x``.  Proposals are generated in batches (one value
per partition) so the simultaneous scheduling strategy of the paper's
Section IV can evaluate all of them in one parallel region.
"""
from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["MultiplierProposal", "reflect"]


def reflect(value: np.ndarray, lower: float, upper: float) -> np.ndarray:
    """Reflect values into [lower, upper] (keeps the proposal symmetric in
    the transformed space when combined with the multiplier's Hastings
    term)."""
    out = np.asarray(value, dtype=np.float64).copy()
    for _ in range(64):
        over = out > upper
        under = out < lower
        if not (over.any() or under.any()):
            break
        out[over] = upper * upper / out[over]      # reflect in log space
        out[under] = lower * lower / out[under]
    return np.clip(out, lower, upper)


@dataclass
class MultiplierProposal:
    """The multiplier proposal ``x' = x * exp(tuning * (u - 0.5))``.

    Attributes
    ----------
    tuning:
        Window width lambda; larger = bolder moves.
    lower, upper:
        Hard bounds (proposals are reflected back inside).
    """

    tuning: float = 2.0 * np.log(1.2)
    lower: float = 1e-6
    upper: float = 1e6

    def propose(
        self, current: np.ndarray, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        """Batch-propose new values.

        Returns ``(proposed, log_hastings)`` where ``log_hastings[i] =
        log(x'_i / x_i)`` is the Jacobian term of the multiplier move.
        """
        current = np.asarray(current, dtype=np.float64)
        factor = np.exp(self.tuning * (rng.random(current.shape) - 0.5))
        proposed = reflect(current * factor, self.lower, self.upper)
        with np.errstate(divide="ignore"):
            log_hastings = np.log(proposed / current)
        return proposed, log_hastings
