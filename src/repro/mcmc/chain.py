"""Bayesian MCMC over partitioned models (paper Section IV implications).

The paper argues that Bayesian programs face the *same* load-balance
problem as "classic" ML: a proposal that touches one partition's
parameters triggers likelihood work only on that partition's columns, so
per-partition proposals produce oldPAR-shaped schedules.  Its recommended
redesign: "the mechanism and underlying statistics should be designed such
as to allow for applying simultaneous changes to one of the parameter
types across all partitions", and "branch length changes should be
simultaneously proposed for all partitions of the same topological
connection".

:class:`BayesianChain` implements both scheduling modes over the shared
likelihood engine:

``per_partition``
    every generation proposes one parameter of ONE partition — each
    evaluation is a one-partition parallel region (the status quo the
    paper criticizes);
``simultaneous``
    every generation proposes the same parameter type across ALL
    partitions at once — one whole-alignment region — and accepts/rejects
    per partition independently (valid because, with per-partition branch
    lengths and models, the posterior factorizes over partitions given the
    shared topology).

Both modes target the same posterior; only the schedule differs —
mirroring the oldPAR/newPAR relationship exactly.
"""
from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.engine import PartitionedEngine
from ..core.trace import NullRecorder, TraceRecorder
from ..plk.partition import PartitionedAlignment
from ..plk.tree import Tree
from .priors import PriorSet
from .proposals import MultiplierProposal

__all__ = ["BayesianChain", "ChainSamples", "MetropolisCoupledSampler"]

SCHEDULING_MODES = ("per_partition", "simultaneous")
MOVE_TYPES = ("branch", "alpha", "rate")

_ALPHA_BOUNDS = (0.02, 100.0)
_BRANCH_BOUNDS = (1e-7, 10.0)
_RATE_BOUNDS = (1e-3, 100.0)


@dataclass
class ChainSamples:
    """Thinned posterior samples collected by :meth:`BayesianChain.run`."""

    loglikelihood: list[float] = field(default_factory=list)
    alphas: list[np.ndarray] = field(default_factory=list)
    tree_lengths: list[np.ndarray] = field(default_factory=list)

    def alpha_matrix(self) -> np.ndarray:
        """(n_samples, n_partitions) alpha draws."""
        return np.asarray(self.alphas)

    def tree_length_matrix(self) -> np.ndarray:
        return np.asarray(self.tree_lengths)


class BayesianChain:
    """One MCMC chain over a partitioned dataset on a fixed topology.

    Parameters
    ----------
    data, tree:
        As for :class:`~repro.core.engine.PartitionedEngine`; the chain
        uses per-partition branch lengths (the mode where scheduling
        matters most).
    scheduling:
        ``"per_partition"`` or ``"simultaneous"`` (see module docstring).
    temperature:
        MC3 inverse-heat beta; 1.0 = the cold chain.
    recorder:
        Optional trace recorder — Bayesian runs capture schedules exactly
        like ML runs.
    """

    def __init__(
        self,
        data: PartitionedAlignment,
        tree: Tree,
        seed: int = 0,
        scheduling: str = "simultaneous",
        priors: PriorSet | None = None,
        temperature: float = 1.0,
        recorder: TraceRecorder | NullRecorder | None = None,
        initial_lengths: np.ndarray | None = None,
    ):
        if scheduling not in SCHEDULING_MODES:
            raise ValueError(f"scheduling must be one of {SCHEDULING_MODES}")
        self.scheduling = scheduling
        self.temperature = float(temperature)
        self.rng = np.random.default_rng(seed)
        self.recorder = recorder if recorder is not None else NullRecorder()
        self.priors = priors if priors is not None else PriorSet()
        self.engine = PartitionedEngine(
            data,
            tree,
            branch_mode="per_partition",
            initial_lengths=initial_lengths,
            recorder=self.recorder,
        )
        self.n_partitions = self.engine.n_partitions
        self._dna = np.array([p.data.states == 4 for p in self.engine.parts])
        self._proposals = {
            "branch": MultiplierProposal(2 * np.log(2.0), *_BRANCH_BOUNDS),
            "alpha": MultiplierProposal(2 * np.log(1.5), *_ALPHA_BOUNDS),
            "rate": MultiplierProposal(2 * np.log(1.3), *_RATE_BOUNDS),
        }
        # cached per-partition log-likelihoods at the current state
        self._lnl = self.engine.partition_loglikelihoods()
        self.generation = 0
        self.accepted = 0
        self.proposed = 0

    # ------------------------------------------------------------------

    @property
    def loglikelihood(self) -> float:
        return float(self._lnl.sum())

    def log_prior(self) -> float:
        """Total log prior of the current state."""
        total = 0.0
        for p, part in enumerate(self.engine.parts):
            total += float(self.priors.branch(part.branch_lengths).sum())
            total += float(self.priors.alpha(np.array([part.alpha]))[0])
            if self._dna[p]:
                total += float(self.priors.rate(part.model.rates[:-1]).sum())
        return total

    def acceptance_rate(self) -> float:
        return self.accepted / max(self.proposed, 1)

    # ------------------------------------------------------------------
    # One generation
    # ------------------------------------------------------------------

    def step(self) -> None:
        """One generation: one proposal event (whose shape depends on the
        scheduling mode)."""
        move = MOVE_TYPES[int(self.rng.integers(0, len(MOVE_TYPES)))]
        if move == "branch":
            edge = int(self.rng.integers(0, self.engine.n_edges))
            self._move_branch(edge)
        elif move == "alpha":
            self._move_alpha()
        else:
            self._move_rate(int(self.rng.integers(0, 5)))
        self.generation += 1

    # -- generic machinery -------------------------------------------------

    def _partition_batches(self, eligible: np.ndarray) -> list[np.ndarray]:
        """Which partitions each proposal event touches: all at once
        (simultaneous) or one event per partition (per_partition)."""
        idx = np.flatnonzero(eligible)
        if self.scheduling == "simultaneous":
            return [idx] if len(idx) else []
        return [np.array([p]) for p in idx]

    def _evaluate(self, partitions: np.ndarray, root_edge: int) -> np.ndarray:
        """Likelihoods of the given partitions in ONE parallel region."""
        out = np.zeros(self.n_partitions)
        self.recorder.begin_region(f"mcmc_{self.scheduling}")
        for p in partitions:
            out[p] = self.engine.parts[p].loglikelihood(root_edge)
        self.recorder.end_region()
        return out

    def _accept_mask(
        self, partitions: np.ndarray, delta_posterior: np.ndarray
    ) -> np.ndarray:
        """Per-partition Metropolis decisions (heated by temperature)."""
        u = self.rng.random(len(partitions))
        accept = np.log(u) < self.temperature * delta_posterior[partitions]
        self.proposed += len(partitions)
        self.accepted += int(accept.sum())
        return accept

    # -- moves --------------------------------------------------------------

    def _move_branch(self, edge: int) -> None:
        """Propose new lengths for ONE topological branch — across all
        partitions at once (simultaneous) or partition by partition."""
        proposal = self._proposals["branch"]
        current = self.engine.branch_lengths()[edge]  # (P,)
        for batch in self._partition_batches(np.ones(self.n_partitions, bool)):
            new, hastings = proposal.propose(current[batch], self.rng)
            delta_prior = (
                self.priors.branch(new) - self.priors.branch(current[batch])
            )
            for i, p in enumerate(batch):
                self.engine.parts[p].set_branch_length(edge, float(new[i]))
            lnl_new = self._evaluate(batch, root_edge=edge)
            delta = np.zeros(self.n_partitions)
            delta[batch] = (
                lnl_new[batch] - self._lnl[batch] + delta_prior + hastings
            )
            accept = self._accept_mask(batch, delta)
            for i, p in enumerate(batch):
                if accept[i]:
                    self._lnl[p] = lnl_new[p]
                    current[p] = new[i]
                else:
                    self.engine.parts[p].set_branch_length(edge, float(current[p]))

    def _move_alpha(self) -> None:
        proposal = self._proposals["alpha"]
        current = np.array([part.alpha for part in self.engine.parts])
        for batch in self._partition_batches(np.ones(self.n_partitions, bool)):
            new, hastings = proposal.propose(current[batch], self.rng)
            delta_prior = self.priors.alpha(new) - self.priors.alpha(current[batch])
            for i, p in enumerate(batch):
                self.engine.parts[p].alpha = float(new[i])
            lnl_new = self._evaluate(batch, root_edge=0)
            delta = np.zeros(self.n_partitions)
            delta[batch] = (
                lnl_new[batch] - self._lnl[batch] + delta_prior + hastings
            )
            accept = self._accept_mask(batch, delta)
            for i, p in enumerate(batch):
                if accept[i]:
                    self._lnl[p] = lnl_new[p]
                else:
                    self.engine.parts[p].alpha = float(current[p])

    def _move_rate(self, rate_index: int) -> None:
        """Propose one GTR exchangeability across the DNA partitions."""
        if not self._dna.any():
            return
        proposal = self._proposals["rate"]
        current = np.array(
            [
                part.model.rates[rate_index] if self._dna[p] else 1.0
                for p, part in enumerate(self.engine.parts)
            ]
        )
        for batch in self._partition_batches(self._dna):
            new, hastings = proposal.propose(current[batch], self.rng)
            delta_prior = self.priors.rate(new) - self.priors.rate(current[batch])
            for i, p in enumerate(batch):
                self.engine.parts[p].model = self.engine.parts[p].model.with_rate(
                    rate_index, float(new[i])
                )
            lnl_new = self._evaluate(batch, root_edge=0)
            delta = np.zeros(self.n_partitions)
            delta[batch] = (
                lnl_new[batch] - self._lnl[batch] + delta_prior + hastings
            )
            accept = self._accept_mask(batch, delta)
            for i, p in enumerate(batch):
                if not accept[i]:
                    self.engine.parts[p].model = self.engine.parts[
                        p
                    ].model.with_rate(rate_index, float(current[p]))
                else:
                    self._lnl[p] = lnl_new[p]

    # ------------------------------------------------------------------

    def run(self, generations: int, sample_every: int = 10) -> ChainSamples:
        """Run the chain, collecting thinned samples."""
        samples = ChainSamples()
        for g in range(generations):
            self.step()
            if (g + 1) % sample_every == 0:
                samples.loglikelihood.append(self.loglikelihood)
                samples.alphas.append(
                    np.array([p.alpha for p in self.engine.parts])
                )
                samples.tree_lengths.append(
                    np.array([p.branch_lengths.sum() for p in self.engine.parts])
                )
        return samples


class MetropolisCoupledSampler:
    """Metropolis-coupled MCMC (MC3): one cold chain plus heated chains,
    with state swaps — MrBayes' scheme, built on :class:`BayesianChain`.

    The paper notes MC3 multiplies the memory footprint (separate inner
    likelihood vectors per chain); that is literal here: each chain owns a
    full engine with its own CLVs.
    """

    def __init__(
        self,
        data: PartitionedAlignment,
        tree: Tree,
        n_chains: int = 2,
        heat: float = 0.2,
        seed: int = 0,
        scheduling: str = "simultaneous",
        initial_lengths: np.ndarray | None = None,
    ):
        if n_chains < 1:
            raise ValueError("need at least one chain")
        self.rng = np.random.default_rng(seed + 777)
        self.chains = [
            BayesianChain(
                data,
                tree.copy(),
                seed=seed + k,
                scheduling=scheduling,
                temperature=1.0 / (1.0 + heat * k),
                initial_lengths=initial_lengths,
            )
            for k in range(n_chains)
        ]
        self.swaps_proposed = 0
        self.swaps_accepted = 0

    @property
    def cold(self) -> BayesianChain:
        return max(self.chains, key=lambda c: c.temperature)

    def step(self) -> None:
        """One generation in every chain plus one swap attempt."""
        for chain in self.chains:
            chain.step()
        if len(self.chains) < 2:
            return
        i = int(self.rng.integers(0, len(self.chains) - 1))
        a, b = self.chains[i], self.chains[i + 1]
        post_a = a.loglikelihood + a.log_prior()
        post_b = b.loglikelihood + b.log_prior()
        log_r = (a.temperature - b.temperature) * (post_b - post_a)
        self.swaps_proposed += 1
        if np.log(self.rng.random()) < log_r:
            a.temperature, b.temperature = b.temperature, a.temperature
            self.swaps_accepted += 1

    def run(self, generations: int, sample_every: int = 10) -> ChainSamples:
        """Run all chains; samples come from whichever chain is cold."""
        samples = ChainSamples()
        for g in range(generations):
            self.step()
            if (g + 1) % sample_every == 0:
                cold = self.cold
                samples.loglikelihood.append(cold.loglikelihood)
                samples.alphas.append(
                    np.array([p.alpha for p in cold.engine.parts])
                )
                samples.tree_lengths.append(
                    np.array([p.branch_lengths.sum() for p in cold.engine.parts])
                )
        return samples
