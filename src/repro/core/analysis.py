"""Analysis entry points + trace capture for the paper's experiments.

The paper's experimental setup (Section V) runs, for every dataset, four
analysis types: model-parameter optimization on a fixed input tree and a
full ML tree search, each with joint and with per-partition branch-length
estimates; plus unpartitioned variants of both.  Each run here both
*performs* the real numerical analysis (the numbers are real likelihoods)
and *captures* the kernel-op schedule, which the machine simulator replays
under any platform / thread count / strategy combination.
"""
from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..plk.alignment import Alignment
from ..plk.models import SubstitutionModel
from ..plk.partition import Partition, PartitionedAlignment, PartitionScheme
from ..plk.tree import Tree
from .engine import PartitionedEngine
from .strategies import optimize_model
from .trace import Trace, TraceRecorder

__all__ = [
    "AnalysisRun",
    "run_model_optimization",
    "run_tree_search",
    "unpartitioned_view",
]


@dataclass
class AnalysisRun:
    """Result of one analysis: the final likelihood, the captured
    schedule, and the engine (for inspecting optimized parameters)."""

    loglikelihood: float
    trace: Trace
    engine: PartitionedEngine
    description: str


def _make_engine(
    data: PartitionedAlignment,
    tree: Tree,
    branch_mode: str,
    initial_lengths: np.ndarray | None,
    recorder: TraceRecorder,
    seed: int,
    distribution: str = "cyclic",
) -> PartitionedEngine:
    """Engine with slightly perturbed per-partition starting models, so the
    optimizers genuinely iterate (all-identical starting points would give
    every partition the same iteration count and mask the imbalance)."""
    rng = np.random.default_rng(seed)
    models = []
    alphas = []
    for d in data.data:
        if d.partition.datatype.states == 4:
            rates = np.exp(rng.normal(0.0, 0.3, size=6))
            rates /= rates[-1]
            freqs = rng.dirichlet(np.full(4, 40.0))
            models.append(SubstitutionModel.gtr(rates, freqs))
        else:
            models.append(SubstitutionModel.synthetic_aa(seed))
        alphas.append(float(np.exp(rng.normal(0.0, 0.3))))
    return PartitionedEngine(
        data,
        tree,
        models=models,
        alphas=alphas,
        branch_mode=branch_mode,
        initial_lengths=initial_lengths,
        recorder=recorder,
        distribution=distribution,
    )


def run_model_optimization(
    data: PartitionedAlignment,
    tree: Tree,
    strategy: str = "new",
    branch_mode: str = "per_partition",
    initial_lengths: np.ndarray | None = None,
    max_rounds: int = 3,
    seed: int = 0,
    distribution: str = "cyclic",
) -> AnalysisRun:
    """The paper's "optimization of ML model parameters (without tree
    search) on a fixed input tree" experiment.

    ``distribution`` stamps the intended parallel pattern-distribution
    policy onto the captured trace (the simulator's default replay policy).
    """
    recorder = TraceRecorder()
    work_tree = tree.copy()
    engine = _make_engine(
        data, work_tree, branch_mode, initial_lengths, recorder, seed, distribution
    )
    lnl = optimize_model(engine, strategy=strategy, max_rounds=max_rounds)
    trace = recorder.finalize(
        engine.pattern_counts(), engine.states(), distribution=engine.distribution
    )
    return AnalysisRun(
        loglikelihood=lnl,
        trace=trace,
        engine=engine,
        description=f"model-opt strategy={strategy} branch_mode={branch_mode}",
    )


def run_tree_search(
    data: PartitionedAlignment,
    tree: Tree,
    strategy: str = "new",
    branch_mode: str = "per_partition",
    initial_lengths: np.ndarray | None = None,
    radius: int = 2,
    max_rounds: int = 1,
    max_candidates: int | None = None,
    seed: int = 0,
    distribution: str = "cyclic",
) -> AnalysisRun:
    """The paper's "full ML tree search (on a fixed input tree for
    reproducibility)" experiment.

    ``radius`` / ``max_rounds`` / ``max_candidates`` bound the
    rearrangement effort; the benchmark harness uses modest values because
    the *schedule statistics* converge after a few hundred candidate
    moves (EXPERIMENTS.md discusses this scaling).
    """
    from ..search.search import tree_search  # local import: layer inversion

    recorder = TraceRecorder()
    work_tree = tree.copy()
    engine = _make_engine(
        data, work_tree, branch_mode, initial_lengths, recorder, seed, distribution
    )
    result = tree_search(
        engine,
        strategy=strategy,
        radius=radius,
        max_rounds=max_rounds,
        max_candidates=max_candidates,
    )
    trace = recorder.finalize(
        engine.pattern_counts(), engine.states(), distribution=engine.distribution
    )
    return AnalysisRun(
        loglikelihood=result.loglikelihood,
        trace=trace,
        engine=engine,
        description=(
            f"tree-search strategy={strategy} branch_mode={branch_mode} "
            f"radius={radius} rounds={result.rounds}"
        ),
    )


def unpartitioned_view(data: PartitionedAlignment) -> PartitionedAlignment:
    """Re-wrap a partitioned alignment as a single partition covering all
    columns (the paper's "completely unpartitioned analysis" baseline in
    Fig. 6).  Requires a homogeneous datatype."""
    datatypes = {d.partition.datatype.name for d in data.data}
    if len(datatypes) != 1:
        raise ValueError("cannot unpartition a mixed-datatype alignment")
    alignment: Alignment = data.alignment
    scheme = PartitionScheme(
        (
            Partition(
                "all",
                data.data[0].partition.datatype,
                ((0, alignment.n_sites),),
            ),
        )
    )
    return PartitionedAlignment(alignment, scheme)
