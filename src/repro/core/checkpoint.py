"""Analysis checkpointing: serialize an engine's optimized state.

Long partitioned analyses (the paper's 2.25-million-CPU-hour scale) need
restartability.  A checkpoint captures everything the optimizers have
learned — topology, per-partition branch lengths, substitution models,
alpha, pinv, proportional scalers — as plain JSON, and can rebuild an
equivalent engine against the same alignment later.
"""
from __future__ import annotations

import json
from typing import Any

import numpy as np

from ..plk.models import SubstitutionModel
from ..plk.newick import write_newick
from ..plk.partition import PartitionedAlignment
from .engine import PartitionedEngine

__all__ = ["engine_to_checkpoint", "engine_from_checkpoint", "save_checkpoint", "load_checkpoint"]

FORMAT_VERSION = 1


def engine_to_checkpoint(engine: PartitionedEngine) -> dict[str, Any]:
    """Snapshot an engine's state as a JSON-serializable dict."""
    lengths = engine.branch_lengths()  # (E, P)
    return {
        "format_version": FORMAT_VERSION,
        "branch_mode": engine.branch_mode,
        # the explicit edge list preserves node/edge numbering exactly;
        # the Newick string is included for human inspection only
        "edges": [[eid, u, v] for eid, u, v in engine.tree.edges()],
        "tree": write_newick(engine.tree, precision=12),
        "taxa": list(engine.tree.taxa),
        "scalers": engine.scalers.tolist(),
        "global_lengths": engine.global_lengths.tolist(),
        "partitions": [
            {
                "name": engine.data.scheme[p].name,
                "datatype": part.data.partition.datatype.name,
                "alpha": part.alpha,
                "pinv": part.pinv,
                "rates": part.model.rates.tolist(),
                "frequencies": part.model.frequencies.tolist(),
                "branch_lengths": lengths[:, p].tolist(),
            }
            for p, part in enumerate(engine.parts)
        ],
    }


def engine_from_checkpoint(
    data: PartitionedAlignment, state: dict[str, Any],
    kernel: str | None = None,
) -> PartitionedEngine:
    """Rebuild an engine from a checkpoint against the same alignment.

    Validates structural compatibility (taxa, partition count/names) and
    restores every optimized parameter; likelihood arrays are recomputed
    lazily on first evaluation.
    """
    if state.get("format_version") != FORMAT_VERSION:
        raise ValueError(
            f"unsupported checkpoint version {state.get('format_version')!r}"
        )
    if len(state["partitions"]) != data.n_partitions:
        raise ValueError(
            f"checkpoint has {len(state['partitions'])} partitions, "
            f"alignment has {data.n_partitions}"
        )
    for entry, part in zip(state["partitions"], data.scheme):
        if entry["name"] != part.name:
            raise ValueError(
                f"partition name mismatch: {entry['name']!r} vs {part.name!r}"
            )

    if tuple(state["taxa"]) != tuple(data.taxa):
        raise ValueError("checkpoint taxa do not match the alignment's")
    from ..plk.tree import Tree

    tree = Tree(tuple(state["taxa"]))
    for eid, u, v in state["edges"]:
        tree._link(int(u), int(v), int(eid))
    tree.validate()

    models = []
    alphas = []
    for entry, block in zip(state["partitions"], data.data):
        models.append(
            SubstitutionModel(
                block.partition.datatype,
                np.asarray(entry["rates"], dtype=np.float64),
                np.asarray(entry["frequencies"], dtype=np.float64),
            )
        )
        alphas.append(float(entry["alpha"]))

    engine = PartitionedEngine(
        data,
        tree,
        models=models,
        alphas=alphas,
        branch_mode=state["branch_mode"],
        kernel=kernel,
    )
    engine._global_lengths[:] = np.asarray(state["global_lengths"])
    if state["branch_mode"] == "proportional":
        for p, s in enumerate(state["scalers"]):
            engine.set_scaler(p, float(s))
        engine.set_all_branch_lengths(np.asarray(state["global_lengths"]))
    else:
        for p, entry in enumerate(state["partitions"]):
            engine.parts[p].set_branch_lengths(
                np.asarray(entry["branch_lengths"], dtype=np.float64)
            )
    for p, entry in enumerate(state["partitions"]):
        if entry.get("pinv", 0.0):
            engine.parts[p].pinv = float(entry["pinv"])
    return engine


def save_checkpoint(engine: PartitionedEngine, path) -> None:
    """Write a checkpoint file (JSON)."""
    with open(path, "w") as fh:
        json.dump(engine_to_checkpoint(engine), fh, indent=1)


def load_checkpoint(data: PartitionedAlignment, path,
                    kernel: str | None = None) -> PartitionedEngine:
    """Rebuild an engine from a checkpoint file."""
    with open(path) as fh:
        return engine_from_checkpoint(data, json.load(fh), kernel=kernel)
