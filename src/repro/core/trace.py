"""Kernel-operation traces: the schedule the parallel PLK executes.

The Pthreads PLK is a master/worker design (paper Fig. 1): the master
issues a command (recompute these likelihood arrays / compute branch
derivatives / evaluate), every worker executes the command over *its*
share of the alignment patterns, and a barrier (plus, for score
computations, a reduction) ends the command.  We call one such
command-execute-barrier unit a :class:`Region`.

A :class:`Trace` is the sequence of regions a full analysis run performs.
Its defining property: the region sequence is identical no matter how many
workers execute it — parallelism only changes how each region's work is
split.  That is why a trace captured from a *real* single-process run of
our PLK can be replayed by :mod:`repro.simmachine` under any thread count,
platform and distribution policy: the load-balance phenomenon lives
entirely in the per-region active-partition sets, which the oldPAR and
newPAR strategies shape differently.

Ops recorded per region (matching :class:`repro.plk.likelihood`'s hooks):

========== =============================================================
``newview``    one pruning step (cost ~ states^2 * K per pattern)
``sumtable``   branch sumtable setup (cost ~ states^2 * K per pattern)
``derivative`` one NR derivative pass (cost ~ states * K per pattern)
``evaluate``   root score reduction (cost ~ states^2 * K per pattern)
========== =============================================================
"""
from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "WorkItem",
    "Region",
    "Trace",
    "TraceRecorder",
    "NullRecorder",
    "COMMAND_KINDS",
    "REGION_KINDS",
    "command_kind",
    "describe_command",
]

KNOWN_OPS = ("newview", "sumtable", "derivative", "evaluate")

# Region kinds shared between the simulator's predicted schedule and the
# real backends' measured schedule (repro.perf).  The first four are the
# kernel ops above; "control" covers parameter updates and bookkeeping
# commands whose cost is pure synchronization (no per-pattern work).
REGION_KINDS = KNOWN_OPS + ("control",)

# Master-broadcast command -> region kind.  One broadcast == one region:
# this is the dictionary that lets a measured RunProfile and a simulated
# SimulationResult speak the same per-region vocabulary.  Likelihood
# evaluations ("lnl", "eval_alpha", ...) internally perform newview work
# too; they are classified by their terminal reduction, matching how the
# strategy drivers label the simulator's regions.
COMMAND_KINDS = {
    "lnl": "evaluate",
    "lnl_parts": "evaluate",
    "branch_lnl": "evaluate",
    "eval_alpha": "evaluate",
    "prepare": "sumtable",
    "deriv": "derivative",
    "set_bl": "control",
    "set_bl_vec": "control",
    "set_alpha": "control",
    "set_alpha_vec": "control",
    "set_model": "control",
    "release": "control",
    # Fault injection: live-plane stall drills and the serve tier's
    # worker-death chaos drill.
    "stall": "control",
    "die": "control",
    # Fused programs are classified by their first non-control step via
    # describe_command(); this entry is the all-control degenerate case.
    "prog": "control",
}


def command_kind(op: str) -> str:
    """The region kind of a parallel-backend command (default: control)."""
    return COMMAND_KINDS.get(op, "control")


def describe_command(cmd: tuple) -> tuple[str, str, int]:
    """``(label, region_kind, n_commands)`` of one master broadcast.

    Plain commands describe themselves (``n_commands == 1``).  A fused
    program ``("prog", steps)`` is ONE broadcast/barrier executing
    ``len(steps)`` worker commands: it is labelled ``prog(op1+op2+...)``
    and classified by its first non-control step, so e.g. a
    prepare+derivative program profiles as a single sumtable region —
    one barrier, not two.  This is the same accounting the simulator
    applies: a multi-op region is charged dispatch + barrier once.
    """
    op = cmd[0]
    if op != "prog":
        return op, command_kind(op), 1
    ops = [step[0] for step in cmd[1]]
    kind = "control"
    for o in ops:
        k = command_kind(o)
        if k != "control":
            kind = k
            break
    return "prog(" + "+".join(ops) + ")", kind, len(ops)


@dataclass(frozen=True)
class WorkItem:
    """``count`` repetitions of one kernel op over one partition's patterns."""

    partition: int
    op: str
    patterns: int
    count: int = 1

    def __post_init__(self) -> None:
        if self.op not in KNOWN_OPS:
            raise ValueError(f"unknown kernel op {self.op!r}")
        if self.patterns < 0 or self.count <= 0:
            raise ValueError("patterns must be >= 0 and count positive")


@dataclass
class Region:
    """One master command: work items executed by all workers in parallel,
    terminated by one barrier.  ``label`` is a human-readable tag of the
    algorithmic phase that issued it (for reporting/ablations)."""

    items: list[WorkItem] = field(default_factory=list)
    label: str = ""

    def active_partitions(self) -> set[int]:
        return {it.partition for it in self.items}

    def total_pattern_ops(self) -> int:
        """Serial op count: sum over items of patterns * count."""
        return sum(it.patterns * it.count for it in self.items)


@dataclass
class Trace:
    """A recorded analysis schedule plus the dataset geometry needed to
    cost it (per-partition pattern counts and state-space sizes).

    ``distribution`` is the pattern-distribution policy the capturing run
    intended (see :data:`repro.parallel.DISTRIBUTIONS`); the simulator
    uses it as the default replay policy, and any other policy can still
    be requested explicitly at replay time."""

    regions: list[Region] = field(default_factory=list)
    pattern_counts: np.ndarray | None = None   # (P,) m'_p
    states: np.ndarray | None = None           # (P,) 4 or 20
    categories: int = 4
    distribution: str = "cyclic"

    @property
    def n_regions(self) -> int:
        return len(self.regions)

    def op_totals(self) -> dict[str, int]:
        """Serial pattern-op totals by op kind (old/new must agree: the
        strategies regroup work, they do not change it)."""
        totals: dict[str, int] = {op: 0 for op in KNOWN_OPS}
        for region in self.regions:
            for item in region.items:
                totals[item.op] += item.patterns * item.count
        return totals

    def partition_op_totals(self) -> dict[tuple[int, str], int]:
        """Per-(partition, op) serial totals, for invariant checks."""
        totals: dict[tuple[int, str], int] = {}
        for region in self.regions:
            for item in region.items:
                key = (item.partition, item.op)
                totals[key] = totals.get(key, 0) + item.patterns * item.count
        return totals


class TraceRecorder:
    """Collects kernel ops into regions.

    Strategy drivers bracket multi-partition work with
    :meth:`begin_region` / :meth:`end_region`; kernel ops reported while no
    region is open become single-op regions (op = own barrier), which is
    precisely the oldPAR degenerate case.

    Implements the listener protocol of
    :class:`repro.plk.likelihood.PartitionLikelihood` (``newview`` /
    ``evaluate`` / ``sumtable`` / ``derivative``).
    """

    def __init__(self) -> None:
        self.trace = Trace()
        self._open: Region | None = None

    # -- region bracketing ------------------------------------------------

    def begin_region(self, label: str = "") -> None:
        if self._open is not None:
            raise RuntimeError("a region is already open (regions do not nest)")
        self._open = Region(label=label)

    def end_region(self) -> None:
        if self._open is None:
            raise RuntimeError("no region open")
        if self._open.items:  # empty commands are not issued
            self.trace.regions.append(self._open)
        self._open = None

    def _record(self, partition: int, op: str, patterns: int, count: int = 1) -> None:
        item = WorkItem(partition=partition, op=op, patterns=patterns, count=count)
        if self._open is not None:
            self._open.items.append(item)
        else:
            self.trace.regions.append(Region(items=[item], label=op))

    # -- PartitionLikelihood listener protocol -----------------------------

    def newview(self, partition: int, patterns: int, count: int = 1) -> None:
        self._record(partition, "newview", patterns, count)

    def evaluate(self, partition: int, patterns: int) -> None:
        self._record(partition, "evaluate", patterns)

    def sumtable(self, partition: int, patterns: int) -> None:
        self._record(partition, "sumtable", patterns)

    def derivative(self, partition: int, patterns: int) -> None:
        self._record(partition, "derivative", patterns)

    # -- finishing ---------------------------------------------------------

    def finalize(
        self,
        pattern_counts: np.ndarray,
        states: np.ndarray,
        categories: int = 4,
        distribution: str = "cyclic",
    ) -> Trace:
        """Attach dataset geometry (pattern **counts** and state sizes)
        and the intended replay policy, and return the trace."""
        if self._open is not None:
            raise RuntimeError("finalize() with a region still open")
        self.trace.pattern_counts = np.asarray(pattern_counts, dtype=np.int64)
        self.trace.states = np.asarray(states, dtype=np.int64)
        self.trace.categories = categories
        self.trace.distribution = distribution
        return self.trace


class NullRecorder:
    """A recorder that discards everything (used when only the numerical
    result matters); also valid anywhere a TraceRecorder is expected —
    including code paths that finalize unconditionally: ``trace`` exists
    (and stays empty) and :meth:`finalize` attaches geometry exactly like
    :meth:`TraceRecorder.finalize`, so callers need no isinstance checks."""

    def __init__(self) -> None:
        self.trace = Trace()

    def begin_region(self, label: str = "") -> None:  # noqa: D102
        pass

    def end_region(self) -> None:  # noqa: D102
        pass

    def newview(self, partition: int, patterns: int, count: int = 1) -> None:  # noqa: D102
        pass

    def evaluate(self, partition: int, patterns: int) -> None:  # noqa: D102
        pass

    def sumtable(self, partition: int, patterns: int) -> None:  # noqa: D102
        pass

    def derivative(self, partition: int, patterns: int) -> None:  # noqa: D102
        pass

    def finalize(
        self,
        pattern_counts: np.ndarray,
        states: np.ndarray,
        categories: int = 4,
        distribution: str = "cyclic",
    ) -> Trace:
        """Attach dataset geometry to the (empty) trace and return it."""
        self.trace.pattern_counts = np.asarray(pattern_counts, dtype=np.int64)
        self.trace.states = np.asarray(states, dtype=np.int64)
        self.trace.categories = categories
        self.trace.distribution = distribution
        return self.trace
