"""The partitioned likelihood engine (the object the paper's master thread
manages).

:class:`PartitionedEngine` owns one :class:`~repro.plk.likelihood.
PartitionLikelihood` per partition over a shared tree topology, and exposes
the whole-alignment operations the search and optimization layers need:
total log-likelihood, branch-length get/set in *joint* (one length per
branch, shared by all partitions) or *per-partition* (unlinked, Fig. 2 of
the paper) mode, and bulk invalidation after topology moves.

Every kernel operation flows through the engine's recorder, so any analysis
run doubles as a schedule capture for the machine simulator.
"""
from __future__ import annotations

import numpy as np

from ..obs.convergence import NullTelemetry
from ..obs.metrics import NullMetrics
from ..obs.tracer import NullTracer
from ..plk.kernels import get_kernel
from ..plk.likelihood import BranchWorkspace, PartitionLikelihood
from ..plk.models import SubstitutionModel
from ..plk.partition import PartitionedAlignment
from ..plk.tree import Tree
from .trace import NullRecorder, TraceRecorder

__all__ = ["PartitionedEngine", "BRANCH_MODES"]

#: joint — one set of 2n-3 lengths shared by all partitions;
#: per_partition — every partition owns its own lengths (paper Fig. 2);
#: proportional — shared lengths scaled by one free multiplier per
#: partition (the middle ground modern tools offer: per-gene rate
#: without P times the parameters).
BRANCH_MODES = ("joint", "per_partition", "proportional")


class PartitionedEngine:
    """Multi-partition likelihood over a shared topology.

    Parameters
    ----------
    data:
        Pattern-compressed partitioned alignment.
    tree:
        Shared topology (mutated in place by the search layer; call
        :meth:`invalidate_topology` afterwards).
    models:
        Per-partition substitution models; defaults to GTR with empirical
        (data-derived would be ideal; we use uniform) frequencies for DNA
        and the Poisson model for AA partitions.
    alphas:
        Per-partition Gamma shapes (default 1.0).
    branch_mode:
        ``"joint"`` or ``"per_partition"`` (see paper Section IV: the
        per-partition estimate is required by the fast gappy-alignment
        method of [32] and is where the load imbalance bites).
    initial_lengths:
        ``(n_edges,)`` starting branch lengths for every partition.
    recorder:
        Kernel-op listener (default: discard).
    tracer:
        A :class:`repro.obs.Tracer` collecting timestamped spans for every
        parallel region and optimizer phase (default: the zero-overhead
        :class:`repro.obs.NullTracer`).
    metrics:
        A :class:`repro.obs.MetricsRegistry` for run counters/histograms
        (default: discard).
    telemetry:
        A :class:`repro.obs.ConvergenceTelemetry` recording each batched
        optimizer's per-partition convergence vector per iteration
        (default: discard).
    distribution:
        The pattern-distribution policy intended for parallel execution
        of the captured schedule (any name in
        :data:`repro.parallel.DISTRIBUTIONS`).  The sequential engine's
        numbers do not depend on it; it is stamped onto finalized traces
        so simulator replays default to the intended policy.
    kernel:
        Inner-loop backend name from :data:`repro.plk.kernels.KERNELS`
        (or ``None`` for the ``REPRO_KERNEL``/numpy default), shared by
        every partition engine.
    """

    def __init__(
        self,
        data: PartitionedAlignment,
        tree: Tree,
        models: list[SubstitutionModel] | None = None,
        alphas: list[float] | None = None,
        branch_mode: str = "per_partition",
        initial_lengths: np.ndarray | None = None,
        recorder: TraceRecorder | NullRecorder | None = None,
        categories: int = 4,
        tracer=None,
        metrics=None,
        telemetry=None,
        distribution: str = "cyclic",
        kernel: str | None = None,
    ):
        if branch_mode not in BRANCH_MODES:
            raise ValueError(f"branch_mode must be one of {BRANCH_MODES}")
        from ..parallel.distribution import DISTRIBUTIONS

        if distribution not in DISTRIBUTIONS:
            raise ValueError(
                f"distribution must be one of {DISTRIBUTIONS}, got {distribution!r}"
            )
        self.data = data
        self.tree = tree
        self.branch_mode = branch_mode
        self.distribution = distribution
        self.recorder = recorder if recorder is not None else NullRecorder()
        self.tracer = tracer if tracer is not None else NullTracer()
        self.metrics = metrics if metrics is not None else NullMetrics()
        self.telemetry = telemetry if telemetry is not None else NullTelemetry()
        if models is None:
            models = [
                SubstitutionModel.jc69()
                if d.partition.datatype.states == 4
                else SubstitutionModel.poisson_aa()
                for d in data.data
            ]
        if len(models) != data.n_partitions:
            raise ValueError("need one model per partition")
        if alphas is None:
            alphas = [1.0] * data.n_partitions
        if len(alphas) != data.n_partitions:
            raise ValueError("need one alpha per partition")

        # One backend instance shared by all partitions (the sequential
        # engine runs them back to back on one thread).
        self.kernel = get_kernel(kernel)
        self.parts: list[PartitionLikelihood] = [
            PartitionLikelihood(
                d,
                tree,
                model,
                alpha=alpha,
                categories=categories,
                index=i,
                recorder=self.recorder,
                kernel_backend=self.kernel,
            )
            for i, (d, model, alpha) in enumerate(zip(data.data, models, alphas))
        ]
        # Proportional mode: shared lengths + one multiplier per partition.
        self._scalers = np.ones(data.n_partitions)
        self._global_lengths = (
            initial_lengths.copy()
            if initial_lengths is not None
            else np.full(tree.n_edges, 0.1)
        )
        if initial_lengths is not None:
            for part in self.parts:
                part.set_branch_lengths(initial_lengths)

    # ------------------------------------------------------------------

    @property
    def n_partitions(self) -> int:
        return len(self.parts)

    @property
    def n_edges(self) -> int:
        return self.tree.n_edges

    def pattern_counts(self) -> np.ndarray:
        return np.array([p.n_patterns for p in self.parts], dtype=np.int64)

    def states(self) -> np.ndarray:
        return np.array([p.data.states for p in self.parts], dtype=np.int64)

    # ------------------------------------------------------------------
    # Likelihood
    # ------------------------------------------------------------------

    def loglikelihood(self, root_edge: int = 0) -> float:
        """Total log-likelihood (one parallel region: full/partial
        traversal for every partition plus the score reduction)."""
        self.recorder.begin_region("loglikelihood")
        total = sum(p.loglikelihood(root_edge) for p in self.parts)
        self.recorder.end_region()
        return total

    def partition_loglikelihoods(self, root_edge: int = 0) -> np.ndarray:
        self.recorder.begin_region("loglikelihood")
        out = np.array([p.loglikelihood(root_edge) for p in self.parts])
        self.recorder.end_region()
        return out

    # ------------------------------------------------------------------
    # Branch lengths
    # ------------------------------------------------------------------

    def branch_lengths(self) -> np.ndarray:
        """(n_edges, n_partitions) matrix of current lengths (joint mode:
        all columns equal)."""
        return np.stack([p.branch_lengths for p in self.parts], axis=1)

    def set_branch_length(self, edge: int, value: float, partition: int | None = None) -> None:
        """Set one branch length: everywhere (joint / proportional / bulk)
        or in one partition (per-partition mode only)."""
        if partition is None:
            self._global_lengths[edge] = value
            if self.branch_mode == "proportional":
                for p, part in enumerate(self.parts):
                    part.set_branch_length(edge, value * self._scalers[p])
            else:
                for part in self.parts:
                    part.set_branch_length(edge, value)
        else:
            if self.branch_mode != "per_partition":
                raise ValueError(
                    f"cannot set a per-partition length in {self.branch_mode} mode"
                )
            self.parts[partition].set_branch_length(edge, value)

    def set_all_branch_lengths(self, lengths: np.ndarray) -> None:
        self._global_lengths[:] = lengths
        if self.branch_mode == "proportional":
            for p, part in enumerate(self.parts):
                part.set_branch_lengths(lengths * self._scalers[p])
        else:
            for part in self.parts:
                part.set_branch_lengths(lengths)

    # -- proportional mode ---------------------------------------------------

    @property
    def scalers(self) -> np.ndarray:
        """Per-partition branch-length multipliers (proportional mode)."""
        return self._scalers.copy()

    @property
    def global_lengths(self) -> np.ndarray:
        """The shared length vector (joint / proportional modes)."""
        return self._global_lengths.copy()

    def set_scaler(self, partition: int, value: float) -> None:
        """Set one partition's length multiplier (proportional mode);
        rescales every branch of that partition, so its likelihood arrays
        are fully invalidated — the same cost profile as an alpha change."""
        if self.branch_mode != "proportional":
            raise ValueError("scalers only exist in proportional mode")
        if value <= 0:
            raise ValueError("scalers must be positive")
        self._scalers[partition] = value
        self.parts[partition].set_branch_lengths(self._global_lengths * value)

    # ------------------------------------------------------------------
    # Topology bookkeeping
    # ------------------------------------------------------------------

    def invalidate_topology(self, nodes: list[int] | None = None) -> None:
        """Invalidate CLVs after a topology move: the given inner nodes, or
        everything if None."""
        for part in self.parts:
            if nodes is None:
                part.invalidate_all()
            else:
                for node in nodes:
                    part.invalidate_node(node)

    # ------------------------------------------------------------------
    # Newton-Raphson plumbing shared by the strategies
    # ------------------------------------------------------------------

    def prepare_branch_all(self, edge: int, label: str = "prepare") -> list[BranchWorkspace]:
        """Sumtables for ``edge`` in every partition, in ONE region (the
        newPAR grouping)."""
        self.recorder.begin_region(label)
        out = [p.prepare_branch(edge) for p in self.parts]
        self.recorder.end_region()
        return out

    def prepare_branch_one(self, edge: int, partition: int) -> BranchWorkspace:
        """Sumtable for one partition (its own region — the oldPAR way)."""
        self.recorder.begin_region("prepare")
        ws = self.parts[partition].prepare_branch(edge)
        self.recorder.end_region()
        return ws
