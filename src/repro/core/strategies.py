"""oldPAR vs newPAR: the paper's contribution (Section IV).

Both strategies perform the *same* numerical work — Brent on the Q-matrix
rates and the Gamma shape per partition, Newton-Raphson on every branch —
and converge to the same optima (a property our tests assert).  They
differ only in how the iterative work is grouped into parallel regions:

* **oldPAR** (the "original, relatively straight-forward approach")
  optimizes *one partition at a time*.  Every optimizer iteration issues a
  command that touches only the active partition's ``m'_p`` patterns, so
  with T threads each worker gets ``~m'_p / T`` patterns of work per
  barrier — possibly zero when ``m'_p < T`` (the SGI Altix worst case the
  paper describes).

* **newPAR** (the paper's redesign) runs one optimizer state machine per
  partition *in lock step*: each iteration issues a single command over
  the union of all still-unconverged partitions, tracking convergence in
  a boolean vector.  Per-barrier work stays near the full alignment width
  ``m'`` for as long as any partition is active.

Joint-branch-length mode: every Newton iteration naturally spans all
partitions (the derivative is a sum over partitions), so the strategies
only differ in the model-parameter (Brent) phase — which is why the paper
measures only ~5% improvement there.
"""
from __future__ import annotations

from contextlib import contextmanager

import numpy as np

from ..obs.metrics import ITERATION_BUCKETS
from ..optimize.brent import BatchedBrent
from ..optimize.newton import BatchedNewton, newton_optimize
from .engine import PartitionedEngine

__all__ = [
    "STRATEGIES",
    "optimize_branch",
    "optimize_branch_lengths",
    "optimize_alpha",
    "optimize_rates",
    "optimize_frequencies",
    "optimize_model",
    "optimize_pinv",
    "optimize_scalers",
    "smoothing_edge_order",
]

STRATEGIES = ("old", "new")

#: Optimizer bounds, mirroring RAxML's compile-time limits.
ALPHA_MIN, ALPHA_MAX = 0.02, 100.0
RATE_MIN, RATE_MAX = 1e-3, 100.0
BRANCH_MIN, BRANCH_MAX = 1e-8, 50.0


def _check_strategy(strategy: str) -> None:
    if strategy not in STRATEGIES:
        raise ValueError(f"strategy must be one of {STRATEGIES}, got {strategy!r}")


@contextmanager
def _region(engine: PartitionedEngine, label: str):
    """Bracket one parallel region: recorded for the simulator and — when
    a tracer is attached — timestamped as one span (each batched optimizer
    iteration evaluates through exactly one region, so these spans ARE the
    per-iteration timeline)."""
    engine.recorder.begin_region(label)
    try:
        if engine.tracer.enabled:
            with engine.tracer.span(label, cat="region"):
                yield
        else:
            yield
    finally:
        engine.recorder.end_region()


def _observe_iterations(engine: PartitionedEngine, name: str, iterations) -> None:
    """Publish a batched optimizer's per-partition iteration counts."""
    if engine.metrics.enabled:
        hist = engine.metrics.histogram(f"iterations.{name}", bounds=ITERATION_BUCKETS)
        for count in np.asarray(iterations, dtype=np.int64).ravel():
            hist.observe(float(count))
        engine.metrics.counter(f"optimizer_calls.{name}").inc()


def smoothing_edge_order(tree) -> list[int]:
    """Edges in depth-first visit order, so consecutive branch
    optimizations re-root the likelihood arrays at *adjacent* branches and
    each move costs O(1) newviews (RAxML's smoothTree walk)."""
    order: list[int] = []
    seen: set[int] = set()
    start = tree.n_taxa  # an inner node
    stack = [(start, -1)]
    while stack:
        node, parent = stack.pop()
        for nb in tree.neighbors(node):
            if nb == parent:
                continue
            eid = tree.edge_between(node, nb)
            if eid not in seen:
                seen.add(eid)
                order.append(eid)
            if not tree.is_leaf(nb):
                stack.append((nb, node))
    return order


# ----------------------------------------------------------------------
# Branch lengths (Newton-Raphson)
# ----------------------------------------------------------------------

def optimize_branch(
    engine: PartitionedEngine,
    edge: int,
    strategy: str = "new",
    ztol: float = 1e-6,
    max_iter: int = 64,
) -> np.ndarray:
    """Optimize one branch; returns the per-partition iteration counts
    (useful for load-balance diagnostics)."""
    _check_strategy(strategy)
    n_parts = engine.n_partitions
    z0 = engine.branch_lengths()[edge]  # (P,)

    if engine.branch_mode == "proportional":
        # Newton-Raphson on the SHARED length b; partition p evaluates at
        # s_p * b, contributing a chain-rule factor s_p (s_p^2 for the
        # curvature).  Like joint mode, every iteration spans all
        # partitions, so the strategies produce the same schedule.
        workspaces = engine.prepare_branch_all(edge)
        scalers = engine.scalers

        def prop_fn(b: float) -> tuple[float, float]:
            d1 = d2 = 0.0
            with _region(engine, "nr_proportional"):
                for p, (part, ws) in enumerate(zip(engine.parts, workspaces)):
                    g1, g2 = part.branch_derivatives(ws, scalers[p] * b)
                    d1 += scalers[p] * g1
                    d2 += scalers[p] * scalers[p] * g2
            return d1, d2

        b0 = float(engine.global_lengths[edge])
        b, iters, _ = newton_optimize(
            prop_fn, b0, BRANCH_MIN, BRANCH_MAX, ztol, max_iter
        )
        with _region(engine, "nr_proportional"):
            old_lnl = sum(
                part.branch_loglikelihood(ws, scalers[p] * b0)
                for p, (part, ws) in enumerate(zip(engine.parts, workspaces))
            )
            new_lnl = sum(
                part.branch_loglikelihood(ws, scalers[p] * b)
                for p, (part, ws) in enumerate(zip(engine.parts, workspaces))
            )
        if new_lnl >= old_lnl:
            engine.set_branch_length(edge, b)
        return np.full(n_parts, iters, dtype=np.int64)

    if engine.branch_mode == "joint":
        workspaces = engine.prepare_branch_all(edge)

        def joint_fn(z: float) -> tuple[float, float]:
            with _region(engine, "nr_joint"):
                pairs = [
                    part.branch_derivatives(ws, z)
                    for part, ws in zip(engine.parts, workspaces)
                ]
            return (
                float(sum(p[0] for p in pairs)),
                float(sum(p[1] for p in pairs)),
            )

        z, iters, _ = newton_optimize(
            joint_fn, float(z0[0]), BRANCH_MIN, BRANCH_MAX, ztol, max_iter
        )
        # Monotonicity guard: Newton-Raphson can overshoot; keep the new
        # length only if it does not lower the likelihood (one extra
        # evaluation pass, as RAxML's makenewz performs).
        with _region(engine, "nr_joint"):
            old_lnl = sum(
                part.branch_loglikelihood(ws, float(z0[0]))
                for part, ws in zip(engine.parts, workspaces)
            )
            new_lnl = sum(
                part.branch_loglikelihood(ws, z)
                for part, ws in zip(engine.parts, workspaces)
            )
        if new_lnl >= old_lnl:
            engine.set_branch_length(edge, z)
        return np.full(n_parts, iters, dtype=np.int64)

    if strategy == "new":
        solver = BatchedNewton(BRANCH_MIN, BRANCH_MAX, ztol, max_iter)
        # Fused opening region (the parallel backends' prepare+deriv
        # Program): sumtable setup and the first derivative pass share
        # ONE region — one broadcast/barrier instead of two.  The
        # simulator charges dispatch + barrier once per region, so the
        # fusion shows up directly in predicted sync seconds.
        z_first = solver.initial_point(z0)
        d1_first = np.zeros(n_parts)
        d2_first = np.zeros(n_parts)
        with _region(engine, "nr_new"):
            workspaces = [part.prepare_branch(edge) for part in engine.parts]
            for p in range(n_parts):
                d1_first[p], d2_first[p] = engine.parts[p].branch_derivatives(
                    workspaces[p], float(z_first[p])
                )

        def batched_fn(z: np.ndarray, active: np.ndarray):
            d1 = np.zeros(n_parts)
            d2 = np.zeros(n_parts)
            with _region(engine, "nr_new"):
                for p in np.flatnonzero(active):
                    d1[p], d2[p] = engine.parts[p].branch_derivatives(
                        workspaces[p], float(z[p])
                    )
            return d1, d2

        res = solver.run(
            batched_fn, z0, observer=engine.telemetry.start("nr_branch", n_parts),
            first_eval=(d1_first, d2_first),
        )
        # Monotonicity guard (one batched evaluation region): keep each
        # partition's new length only where the likelihood improved.
        with _region(engine, "nr_new"):
            for p in range(n_parts):
                ws = workspaces[p]
                part = engine.parts[p]
                if part.branch_loglikelihood(ws, float(res.z[p])) >= (
                    part.branch_loglikelihood(ws, float(z0[p]))
                ):
                    part.set_branch_length(edge, float(res.z[p]))
        _observe_iterations(engine, "nr_branch", res.iterations)
        return res.iterations

    # oldPAR: one partition at a time; every NR iteration is a command
    # whose only work is this partition's m'_p patterns.
    counts = np.zeros(n_parts, dtype=np.int64)
    for p in range(n_parts):
        ws = engine.prepare_branch_one(edge, p)

        def scalar_fn(z: float, _p: int = p, _ws=ws) -> tuple[float, float]:
            with _region(engine, "nr_old"):
                return engine.parts[_p].branch_derivatives(_ws, z)

        z, iters, _ = newton_optimize(
            scalar_fn, float(z0[p]), BRANCH_MIN, BRANCH_MAX, ztol, max_iter
        )
        with _region(engine, "nr_old"):
            accept = engine.parts[p].branch_loglikelihood(ws, z) >= (
                engine.parts[p].branch_loglikelihood(ws, float(z0[p]))
            )
        if accept:
            engine.parts[p].set_branch_length(edge, z)
        counts[p] = iters
    return counts


def optimize_branch_lengths(
    engine: PartitionedEngine,
    strategy: str = "new",
    passes: int = 2,
    ztol: float = 1e-6,
    edges: list[int] | None = None,
) -> np.ndarray:
    """Branch-length smoothing: visit every branch (or the given subset)
    ``passes`` times, optimizing each with the selected strategy.  Returns
    the summed per-partition Newton iteration counts."""
    _check_strategy(strategy)
    order = smoothing_edge_order(engine.tree) if edges is None else list(edges)
    totals = np.zeros(engine.n_partitions, dtype=np.int64)
    for _ in range(max(passes, 1)):
        for edge in order:
            totals += optimize_branch(engine, edge, strategy, ztol)
    return totals


# ----------------------------------------------------------------------
# Model parameters (Brent)
# ----------------------------------------------------------------------

def optimize_alpha(
    engine: PartitionedEngine,
    strategy: str = "new",
    xtol: float = 1e-3,
    max_iter: int = 32,
    root_edge: int = 0,
) -> np.ndarray:
    """Optimize each partition's Gamma shape parameter with Brent.

    Each objective evaluation requires a *full tree traversal* of the
    partition (changing alpha invalidates every likelihood array), which
    is why the paper finds the imbalance less severe here (5-10%): there
    is much more work per column between barriers.
    """
    _check_strategy(strategy)
    n_parts = engine.n_partitions
    current = np.array([part.alpha for part in engine.parts])

    if strategy == "new":
        solver = BatchedBrent(
            np.full(n_parts, ALPHA_MIN), np.full(n_parts, ALPHA_MAX), xtol, max_iter
        )

        def batched_fn(x: np.ndarray, active: np.ndarray) -> np.ndarray:
            out = np.zeros(n_parts)
            with _region(engine, "brent_alpha_new"):
                for p in np.flatnonzero(active):
                    engine.parts[p].alpha = float(x[p])
                    out[p] = -engine.parts[p].loglikelihood(root_edge)
            return out

        res = solver.run(
            batched_fn, guess=current,
            observer=engine.telemetry.start("brent_alpha", n_parts),
        )
        for p in range(n_parts):
            engine.parts[p].alpha = float(res.x[p])
        _observe_iterations(engine, "brent_alpha", res.iterations)
        return res.iterations

    counts = np.zeros(n_parts, dtype=np.int64)
    for p in range(n_parts):

        def scalar_fn(x: np.ndarray, active: np.ndarray, _p: int = p) -> np.ndarray:
            with _region(engine, "brent_alpha_old"):
                engine.parts[_p].alpha = float(x[0])
                val = -engine.parts[_p].loglikelihood(root_edge)
            return np.array([val])

        solver = BatchedBrent(
            np.array([ALPHA_MIN]), np.array([ALPHA_MAX]), xtol, max_iter
        )
        res = solver.run(scalar_fn, guess=np.array([current[p]]))
        engine.parts[p].alpha = float(res.x[0])
        counts[p] = res.iterations[0]
    return counts


def optimize_rates(
    engine: PartitionedEngine,
    strategy: str = "new",
    xtol: float = 1e-3,
    max_iter: int = 32,
    root_edge: int = 0,
) -> np.ndarray:
    """Optimize the free Q-matrix exchangeabilities, one rate index at a
    time across partitions (RAxML's scheme: the last rate is the fixed
    reference).

    Only DNA partitions are optimized — empirical protein exchangeabilities
    are fixed, exactly as in RAxML.  Returns total Brent iteration counts
    per partition.
    """
    _check_strategy(strategy)
    n_parts = engine.n_partitions
    dna = np.array([part.data.states == 4 for part in engine.parts])
    counts = np.zeros(n_parts, dtype=np.int64)
    if not dna.any():
        return counts
    n_free = 5  # 6 GTR exchangeabilities, last fixed to 1

    for rate_idx in range(n_free):
        current = np.array(
            [part.model.rates[rate_idx] if dna[p] else 1.0 for p, part in enumerate(engine.parts)]
        )
        current = np.clip(current, RATE_MIN * 1.01, RATE_MAX * 0.99)
        if strategy == "new":
            solver = BatchedBrent(
                np.full(n_parts, RATE_MIN), np.full(n_parts, RATE_MAX), xtol, max_iter
            )

            def batched_fn(
                x: np.ndarray, active: np.ndarray, _i: int = rate_idx
            ) -> np.ndarray:
                out = np.zeros(n_parts)
                with _region(engine, "brent_rate_new"):
                    for p in np.flatnonzero(active):
                        engine.parts[p].model = engine.parts[p].model.with_rate(
                            _i, float(x[p])
                        )
                        out[p] = -engine.parts[p].loglikelihood(root_edge)
                return out

            res = solver.run(
                batched_fn, guess=current, mask=dna,
                observer=engine.telemetry.start("brent_rate", n_parts),
            )
            for p in np.flatnonzero(dna):
                engine.parts[p].model = engine.parts[p].model.with_rate(
                    rate_idx, float(res.x[p])
                )
            _observe_iterations(engine, "brent_rate", res.iterations[dna])
            counts += np.where(dna, res.iterations, 0)
        else:
            for p in np.flatnonzero(dna):

                def scalar_fn(
                    x: np.ndarray, active: np.ndarray, _p: int = int(p), _i: int = rate_idx
                ) -> np.ndarray:
                    with _region(engine, "brent_rate_old"):
                        engine.parts[_p].model = engine.parts[_p].model.with_rate(
                            _i, float(x[0])
                        )
                        val = -engine.parts[_p].loglikelihood(root_edge)
                    return np.array([val])

                solver = BatchedBrent(
                    np.array([RATE_MIN]), np.array([RATE_MAX]), xtol, max_iter
                )
                res = solver.run(scalar_fn, guess=np.array([current[p]]))
                engine.parts[p].model = engine.parts[p].model.with_rate(
                    rate_idx, float(res.x[0])
                )
                counts[p] += res.iterations[0]
    return counts


def optimize_scalers(
    engine: PartitionedEngine,
    strategy: str = "new",
    xtol: float = 1e-3,
    max_iter: int = 32,
    root_edge: int = 0,
) -> np.ndarray:
    """Optimize the per-partition branch-length multipliers (proportional
    mode) with Brent.

    Changing a scaler rescales every branch of its partition — a full
    traversal per objective evaluation, the same cost profile as alpha —
    so this is a genuinely per-partition iterative optimization and the
    oldPAR/newPAR distinction applies in full.  Returns per-partition
    iteration counts.
    """
    _check_strategy(strategy)
    if engine.branch_mode != "proportional":
        raise ValueError("scalers only exist in proportional mode")
    n_parts = engine.n_partitions
    lo, hi = 0.02, 50.0
    current = np.clip(engine.scalers, lo * 1.01, hi * 0.99)

    if strategy == "new":
        solver = BatchedBrent(np.full(n_parts, lo), np.full(n_parts, hi), xtol, max_iter)

        def batched_fn(x: np.ndarray, active: np.ndarray) -> np.ndarray:
            out = np.zeros(n_parts)
            with _region(engine, "brent_scaler_new"):
                for p in np.flatnonzero(active):
                    engine.set_scaler(int(p), float(x[p]))
                    out[p] = -engine.parts[p].loglikelihood(root_edge)
            return out

        res = solver.run(
            batched_fn, guess=current,
            observer=engine.telemetry.start("brent_scaler", n_parts),
        )
        for p in range(n_parts):
            engine.set_scaler(p, float(res.x[p]))
        _observe_iterations(engine, "brent_scaler", res.iterations)
        return res.iterations

    counts = np.zeros(n_parts, dtype=np.int64)
    for p in range(n_parts):

        def scalar_fn(x: np.ndarray, active: np.ndarray, _p: int = p) -> np.ndarray:
            with _region(engine, "brent_scaler_old"):
                engine.set_scaler(_p, float(x[0]))
                val = -engine.parts[_p].loglikelihood(root_edge)
            return np.array([val])

        solver = BatchedBrent(np.array([lo]), np.array([hi]), xtol, max_iter)
        res = solver.run(scalar_fn, guess=np.array([current[p]]))
        engine.set_scaler(p, float(res.x[0]))
        counts[p] = res.iterations[0]
    return counts


def optimize_pinv(
    engine: PartitionedEngine,
    strategy: str = "new",
    xtol: float = 1e-4,
    max_iter: int = 32,
    root_edge: int = 0,
) -> np.ndarray:
    """Optimize the proportion of invariable sites (the +I mixture) per
    partition with Brent.

    pinv only affects root-level mixing — no likelihood arrays are
    invalidated — so each objective evaluation is a single evaluate region
    (the cheapest of all model parameters, and hence the one where oldPAR's
    per-partition barriers hurt relatively most).
    """
    _check_strategy(strategy)
    n_parts = engine.n_partitions
    lo, hi = 1e-6, 0.9
    current = np.clip(
        np.array([part.pinv for part in engine.parts]), lo * 1.01, hi * 0.99
    )

    if strategy == "new":
        solver = BatchedBrent(np.full(n_parts, lo), np.full(n_parts, hi), xtol, max_iter)

        def batched_fn(x: np.ndarray, active: np.ndarray) -> np.ndarray:
            out = np.zeros(n_parts)
            with _region(engine, "brent_pinv_new"):
                for p in np.flatnonzero(active):
                    engine.parts[p].pinv = float(x[p])
                    out[p] = -engine.parts[p].loglikelihood(root_edge)
            return out

        res = solver.run(
            batched_fn, guess=current,
            observer=engine.telemetry.start("brent_pinv", n_parts),
        )
        for p in range(n_parts):
            engine.parts[p].pinv = float(res.x[p])
        _observe_iterations(engine, "brent_pinv", res.iterations)
        return res.iterations

    counts = np.zeros(n_parts, dtype=np.int64)
    for p in range(n_parts):

        def scalar_fn(x: np.ndarray, active: np.ndarray, _p: int = p) -> np.ndarray:
            with _region(engine, "brent_pinv_old"):
                engine.parts[_p].pinv = float(x[0])
                val = -engine.parts[_p].loglikelihood(root_edge)
            return np.array([val])

        solver = BatchedBrent(np.array([lo]), np.array([hi]), xtol, max_iter)
        res = solver.run(scalar_fn, guess=np.array([current[p]]))
        engine.parts[p].pinv = float(res.x[0])
        counts[p] = res.iterations[0]
    return counts


def optimize_frequencies(
    engine: PartitionedEngine,
    strategy: str = "new",
    xtol: float = 1e-3,
    max_iter: int = 24,
    root_edge: int = 0,
    dna_only: bool = True,
) -> np.ndarray:
    """ML-optimize the stationary base frequencies per partition.

    Frequencies are parameterized as ratios against the last state (the
    same pinning RAxML uses for rates); each free ratio is optimized with
    Brent, batched across partitions under newPAR.  By default only DNA
    partitions are optimized (20-state ML frequencies are slow and rarely
    preferred over empirical ones); pass ``dna_only=False`` to include
    protein partitions.
    """
    from ..plk.frequencies import frequency_ratios, ratios_to_frequencies

    _check_strategy(strategy)
    n_parts = engine.n_partitions
    counts = np.zeros(n_parts, dtype=np.int64)
    states = engine.states()
    eligible_all = np.ones(n_parts, dtype=bool) if not dna_only else states == 4
    if not eligible_all.any():
        return counts
    max_free = int(states[eligible_all].max()) - 1
    lo, hi = 1e-3, 1e3

    def set_ratio(p: int, index: int, value: float) -> None:
        part = engine.parts[p]
        ratios = frequency_ratios(part.model.frequencies)
        ratios[index] = value
        part.model = part.model.with_frequencies(ratios_to_frequencies(ratios))

    for index in range(max_free):
        eligible = eligible_all & (states > index + 1)
        if not eligible.any():
            continue
        current = np.ones(n_parts)
        for p in np.flatnonzero(eligible):
            current[p] = frequency_ratios(engine.parts[p].model.frequencies)[index]
        current = np.clip(current, lo * 1.01, hi * 0.99)
        if strategy == "new":
            solver = BatchedBrent(np.full(n_parts, lo), np.full(n_parts, hi), xtol, max_iter)

            def batched_fn(x: np.ndarray, active: np.ndarray, _i: int = index) -> np.ndarray:
                out = np.zeros(n_parts)
                with _region(engine, "brent_freq_new"):
                    for p in np.flatnonzero(active):
                        set_ratio(p, _i, float(x[p]))
                        out[p] = -engine.parts[p].loglikelihood(root_edge)
                return out

            res = solver.run(
                batched_fn, guess=current, mask=eligible,
                observer=engine.telemetry.start("brent_freq", n_parts),
            )
            for p in np.flatnonzero(eligible):
                set_ratio(p, index, float(res.x[p]))
            _observe_iterations(engine, "brent_freq", res.iterations[eligible])
            counts += np.where(eligible, res.iterations, 0)
        else:
            for p in np.flatnonzero(eligible):

                def scalar_fn(
                    x: np.ndarray, active: np.ndarray, _p: int = int(p), _i: int = index
                ) -> np.ndarray:
                    with _region(engine, "brent_freq_old"):
                        set_ratio(_p, _i, float(x[0]))
                        val = -engine.parts[_p].loglikelihood(root_edge)
                    return np.array([val])

                solver = BatchedBrent(np.array([lo]), np.array([hi]), xtol, max_iter)
                res = solver.run(scalar_fn, guess=np.array([current[p]]))
                set_ratio(int(p), index, float(res.x[0]))
                counts[p] += res.iterations[0]
    return counts


def optimize_model(
    engine: PartitionedEngine,
    strategy: str = "new",
    epsilon: float = 0.1,
    max_rounds: int = 10,
    include_rates: bool = True,
    include_branches: bool = True,
    include_frequencies: bool = False,
    include_invariant: bool = False,
    branch_passes: int = 1,
    distribution: str | None = None,
) -> float:
    """Full model-parameter optimization on a fixed topology (the paper's
    "optimization of ML model parameters (without tree search) on a fixed
    input tree" experiment).

    Alternates rate / alpha / branch-length optimization until the total
    log-likelihood improves by less than ``epsilon`` (RAxML's default
    likelihood epsilon is 0.1).  Returns the final log-likelihood.

    ``distribution`` (any name in :data:`repro.parallel.DISTRIBUTIONS`)
    sets the engine's intended parallel pattern-distribution policy before
    the schedule is captured — both oldPAR and newPAR accept it, since the
    policy only shapes how each recorded region is later split across
    threads, never the region sequence itself.
    """
    _check_strategy(strategy)
    if distribution is not None:
        from ..parallel.distribution import DISTRIBUTIONS

        if distribution not in DISTRIBUTIONS:
            raise ValueError(
                f"distribution must be one of {DISTRIBUTIONS}, got {distribution!r}"
            )
        engine.distribution = distribution
    lnl = engine.loglikelihood()
    for round_idx in range(max_rounds):
        with engine.tracer.span("opt_round", cat="optimizer",
                                round=round_idx, strategy=strategy):
            if include_rates:
                optimize_rates(engine, strategy)
            if include_frequencies:
                optimize_frequencies(engine, strategy)
            optimize_alpha(engine, strategy)
            if include_invariant:
                optimize_pinv(engine, strategy)
            if engine.branch_mode == "proportional":
                optimize_scalers(engine, strategy)
            if include_branches:
                optimize_branch_lengths(engine, strategy, passes=branch_passes)
            new_lnl = engine.loglikelihood()
        if new_lnl - lnl < epsilon:
            lnl = max(new_lnl, lnl)
            break
        lnl = new_lnl
    return lnl
