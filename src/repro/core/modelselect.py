"""Model selection for partitioned analyses (AIC / AICc / BIC, LRT).

Choosing between joint, proportional and per-partition branch lengths —
the axis the paper's load-balance analysis runs along — is a model-
selection question: per-partition lengths cost (P-1) * (2n-3) extra
parameters.  These helpers count free parameters per engine configuration
and score fitted engines with the standard information criteria, plus the
likelihood-ratio test for nested pairs.
"""
from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from .engine import PartitionedEngine

__all__ = [
    "free_parameter_count",
    "ModelScore",
    "score_engine",
    "likelihood_ratio_test",
]


def free_parameter_count(engine: PartitionedEngine) -> int:
    """Number of free parameters of an engine's current model structure.

    Counted per standard practice:

    * branch lengths: 2n-3 for joint mode; + (P-1) scalers for
      proportional; P * (2n-3) for per-partition;
    * per partition: alpha (1), pinv (1 if used), GTR exchangeabilities
      (s(s-1)/2 - 1 free for DNA; protein exchangeabilities are fixed
      empirical = 0), base frequencies (s - 1 when estimated; we count
      them — empirical estimation still consumes degrees of freedom
      under the usual convention).
    """
    n_edges = engine.n_edges
    p = engine.n_partitions
    if engine.branch_mode == "joint":
        count = n_edges
    elif engine.branch_mode == "proportional":
        count = n_edges + (p - 1)
    else:
        count = n_edges * p

    for part in engine.parts:
        s = part.data.states
        count += 1  # alpha
        if part.pinv > 0.0:
            count += 1
        if s == 4:
            count += s * (s - 1) // 2 - 1  # GTR exchangeabilities
        count += s - 1  # frequencies
    return count


@dataclass(frozen=True)
class ModelScore:
    """Information-criterion scores of one fitted engine."""

    loglikelihood: float
    parameters: int
    sample_size: int
    aic: float
    aicc: float
    bic: float

    def summary(self) -> str:
        return (
            f"lnL={self.loglikelihood:.2f}  k={self.parameters}  "
            f"AIC={self.aic:.2f}  AICc={self.aicc:.2f}  BIC={self.bic:.2f}"
        )


def score_engine(
    engine: PartitionedEngine, loglikelihood: float | None = None
) -> ModelScore:
    """AIC / AICc / BIC for a fitted engine.

    ``sample_size`` is the total number of alignment columns (the sum of
    pattern weights), the standard n for phylogenetic BIC/AICc.
    """
    lnl = engine.loglikelihood() if loglikelihood is None else loglikelihood
    k = free_parameter_count(engine)
    n = int(sum(part.data.weights.sum() for part in engine.parts))
    aic = 2.0 * k - 2.0 * lnl
    denom = n - k - 1
    aicc = aic + (2.0 * k * (k + 1) / denom) if denom > 0 else np.inf
    bic = k * np.log(n) - 2.0 * lnl
    return ModelScore(
        loglikelihood=lnl,
        parameters=k,
        sample_size=n,
        aic=aic,
        aicc=aicc,
        bic=bic,
    )


def likelihood_ratio_test(
    null_lnl: float, alt_lnl: float, df: int
) -> tuple[float, float]:
    """Likelihood-ratio test of nested models.

    Returns ``(statistic, p_value)`` with the statistic ``2 (lnL_alt -
    lnL_null)`` referred to a chi-square with ``df`` degrees of freedom.
    The alternative must nest the null (``alt_lnl >= null_lnl`` up to
    noise); small negative differences are clamped to zero.
    """
    if df <= 0:
        raise ValueError("df must be positive")
    stat = max(2.0 * (alt_lnl - null_lnl), 0.0)
    p_value = float(stats.chi2.sf(stat, df))
    return stat, p_value
