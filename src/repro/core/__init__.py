"""The paper's contribution: load-balanced optimization of partitioned
phylogenomic analyses (oldPAR vs newPAR), trace capture, and analysis
entry points."""
from .checkpoint import (
    engine_from_checkpoint,
    engine_to_checkpoint,
    load_checkpoint,
    save_checkpoint,
)
from .engine import BRANCH_MODES, PartitionedEngine
from .modelselect import (
    ModelScore,
    free_parameter_count,
    likelihood_ratio_test,
    score_engine,
)
from .strategies import (
    STRATEGIES,
    optimize_alpha,
    optimize_branch,
    optimize_branch_lengths,
    optimize_frequencies,
    optimize_model,
    optimize_pinv,
    optimize_rates,
    optimize_scalers,
    smoothing_edge_order,
)
from .trace import NullRecorder, Region, Trace, TraceRecorder, WorkItem

__all__ = [
    "BRANCH_MODES",
    "ModelScore",
    "free_parameter_count",
    "likelihood_ratio_test",
    "score_engine",
    "NullRecorder",
    "engine_from_checkpoint",
    "engine_to_checkpoint",
    "load_checkpoint",
    "save_checkpoint",
    "PartitionedEngine",
    "Region",
    "STRATEGIES",
    "Trace",
    "TraceRecorder",
    "WorkItem",
    "optimize_alpha",
    "optimize_branch",
    "optimize_branch_lengths",
    "optimize_frequencies",
    "optimize_model",
    "optimize_pinv",
    "optimize_rates",
    "optimize_scalers",
    "smoothing_edge_order",
]
