"""Choosing a branch-length model: joint vs proportional vs per-partition.

The paper argues for per-partition branch lengths on computational grounds
(the gappy-alignment speedup of its ref. [32]); statistically the choice
is a model-selection problem — per-partition lengths cost (P-1)(2n-3)
extra parameters.  This example fits all three modes to data generated
under the PROPORTIONAL model and shows AIC/BIC picking it: better than
joint (real signal) and better than per-partition (overparameterized).

Run:  python examples/model_selection.py     (~1 minute)
"""
import numpy as np

from repro.core import PartitionedEngine, optimize_model
from repro.core.modelselect import likelihood_ratio_test, score_engine
from repro.plk import Alignment, PartitionedAlignment, SubstitutionModel, uniform_scheme
from repro.seqgen import random_topology_with_lengths, simulate_alignment


def main() -> None:
    rng = np.random.default_rng(19)
    tree, lengths = random_topology_with_lengths(10, rng)
    # three genes sharing the tree SHAPE, at 1x / 2x / 4x the rate
    multipliers = (1.0, 2.0, 4.0)
    blocks = []
    for i, mult in enumerate(multipliers):
        aln = simulate_alignment(
            tree, lengths * mult, SubstitutionModel.random_gtr(i), 1.0, 900, rng
        )
        blocks.append(aln.matrix)
    alignment = Alignment(tree.taxa, np.concatenate(blocks, axis=1))
    data = PartitionedAlignment(alignment, uniform_scheme(2_700, 900))
    print(f"3 genes x 900 sites, generated at rates {multipliers} "
          "on one tree (the proportional model)\n")

    scores = {}
    for mode in ("joint", "proportional", "per_partition"):
        engine = PartitionedEngine(
            data, tree.copy(), branch_mode=mode, initial_lengths=lengths
        )
        lnl = optimize_model(engine, "new", max_rounds=3)
        scores[mode] = score_engine(engine, lnl)
        extra = ""
        if mode == "proportional":
            extra = f"  scalers={np.round(engine.scalers, 2)}"
        print(f"{mode:<15} {scores[mode].summary()}{extra}")

    best = min(scores, key=lambda m: scores[m].bic)
    print(f"\nBIC selects: {best}")

    stat, p = likelihood_ratio_test(
        scores["joint"].loglikelihood,
        scores["proportional"].loglikelihood,
        df=scores["proportional"].parameters - scores["joint"].parameters,
    )
    print(f"LRT joint vs proportional: 2dlnL = {stat:.1f}, p = {p:.2e} "
          "(the per-gene rates are real)")
    stat, p = likelihood_ratio_test(
        scores["proportional"].loglikelihood,
        scores["per_partition"].loglikelihood,
        df=scores["per_partition"].parameters - scores["proportional"].parameters,
    )
    print(f"LRT proportional vs per-partition: 2dlnL = {stat:.1f}, p = {p:.2f} "
          "(free per-gene lengths add nothing here)")


if __name__ == "__main__":
    main()
