"""Gappy phylogenomic alignments and induced-subtree evaluation.

Real multi-gene matrices have "data holes" (paper Fig. 2): most genes are
sequenced for only a subset of taxa.  With per-partition branch lengths —
the estimate the paper argues for — each gene's likelihood can be computed
EXACTLY on the subtree its covered taxa span, which is the basis of the
1-2 order-of-magnitude speedup of the paper's reference [32].

Run:  python examples/gappy_phylogenomics.py
"""
import numpy as np

from repro.core import PartitionedEngine
from repro.plk import GappyEngine, SubstitutionModel, taxon_coverage, traversal_cost_ratio
from repro.seqgen import coverage_fraction, gappy_dataset, bootstrap_replicate, split_support


def main() -> None:
    ds = gappy_dataset(
        n_taxa=32, n_partitions=6, partition_length=300, coverage=0.35, seed=4
    )
    data = ds.partitioned()
    cov = taxon_coverage(data)
    print(f"{ds.alignment.n_taxa} taxa x {ds.alignment.n_sites} sites, "
          f"{data.n_partitions} genes, cell coverage "
          f"{coverage_fraction(data):.0%}")
    print("taxa per gene:", cov.sum(axis=1).tolist())

    models = [SubstitutionModel.random_gtr(p) for p in range(6)]
    alphas = [1.0] * 6

    # Full-tree evaluation: every partition traverses all n-2 inner nodes.
    full = PartitionedEngine(
        data, ds.tree.copy(), models=models, alphas=alphas,
        initial_lengths=ds.true_lengths,
    )
    lnl_full = full.loglikelihood()

    # Induced-subtree evaluation: each gene only traverses its own subtree.
    gap = GappyEngine(
        data, ds.tree, models=models, alphas=alphas,
        initial_lengths=ds.true_lengths,
    )
    lnl_gap = gap.loglikelihood()

    print(f"\nfull-tree lnL        : {lnl_full:,.4f}")
    print(f"induced-subtree lnL  : {lnl_gap:,.4f}")
    print(f"difference           : {abs(lnl_full - lnl_gap):.2e}   (exact)")
    print(f"inner nodes per gene : {gap.inner_node_counts().tolist()} "
          f"(full tree: {ds.tree.n_taxa - 2})")
    print(f"traversal cost saving: {traversal_cost_ratio(data, ds.tree):.1f}x")

    # Bootstrap support on the gappy data (the coarse-grained layer).
    rng = np.random.default_rng(0)
    replicate = bootstrap_replicate(data, rng)
    rep_engine = PartitionedEngine(
        replicate, ds.tree.copy(), models=models, alphas=alphas,
        initial_lengths=ds.true_lengths,
    )
    print(f"\none bootstrap replicate lnL: {rep_engine.loglikelihood():,.2f} "
          "(pattern arrays shared with the original — replicates are free)")


if __name__ == "__main__":
    main()
