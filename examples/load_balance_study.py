"""The paper's experiment in miniature: oldPAR vs newPAR.

Runs a real partitioned tree search twice — once optimizing one partition
at a time (oldPAR), once with the lock-step simultaneous optimizers
(newPAR) — captures both parallel schedules, and replays them on the
paper's four simulated platforms at 1/8/16 threads.  Prints a Figure-3
style table plus the barrier-count comparison that explains it.

Run:  python examples/load_balance_study.py      (~1-2 minutes)
"""
import numpy as np

from repro.bench import format_runtime_figure, runtime_figure
from repro.core import TraceRecorder, PartitionedEngine
from repro.search import tree_search
from repro.seqgen import simulated_dataset
from repro.simmachine import NEHALEM, speedup_curve


def capture(dataset, strategy):
    recorder = TraceRecorder()
    engine = PartitionedEngine(
        dataset.partitioned(),
        dataset.tree.copy(),
        branch_mode="per_partition",
        initial_lengths=dataset.true_lengths,
        recorder=recorder,
    )
    result = tree_search(
        engine, strategy=strategy, radius=2, max_rounds=1, max_candidates=40
    )
    trace = recorder.finalize(engine.pattern_counts(), engine.states())
    return result, trace


def main() -> None:
    # A scaled-down cousin of the paper's d50_50000: 20 taxa, 10 x p500.
    dataset = simulated_dataset(20, 5_000, 500, seed=11)
    print(f"dataset: {dataset.n_taxa} taxa, {dataset.n_partitions} partitions "
          f"of 500 patterns (per-partition branch lengths)\n")

    traces = {}
    for strategy in ("old", "new"):
        result, trace = capture(dataset, strategy)
        traces[strategy] = trace
        print(
            f"{strategy}PAR: lnL {result.loglikelihood:,.2f}, "
            f"{result.accepted_moves} moves accepted, "
            f"{trace.n_regions:,} parallel regions (barriers)"
        )

    same = traces["old"].op_totals() == traces["new"].op_totals()
    print(f"\nidentical kernel work in both schedules: {same}")
    ratio = traces["old"].n_regions / traces["new"].n_regions
    print(f"barrier reduction by newPAR: {ratio:.1f}x\n")

    rows = runtime_figure(traces["old"], traces["new"])
    print(format_runtime_figure(
        rows, "simulated runtimes (seconds) on the paper's platforms"))

    print("\nspeedup on Nehalem (paper Fig. 6 shape):")
    for strategy in ("old", "new"):
        curve = speedup_curve(traces[strategy], NEHALEM, [2, 4, 8])
        pretty = ", ".join(f"{t}T: {s:.2f}" for t, s in curve.items())
        print(f"  {strategy}PAR  {pretty}")


if __name__ == "__main__":
    main()
