"""Anatomy of a parallel schedule: why oldPAR fails.

Captures the oldPAR and newPAR schedules of the same analysis and
dissects them with the machine-independent diagnostics: region-size
distribution, single-partition fraction, and the implied balance
efficiency — then shows the sync-to-work breakdown on a simulated
16-core machine.

Run:  python examples/trace_anatomy.py     (~30 seconds)
"""
import numpy as np

from repro.bench import diagnose_trace
from repro.core import PartitionedEngine, TraceRecorder, optimize_model
from repro.seqgen import simulated_dataset
from repro.simmachine import X4600, simulate_trace


def main() -> None:
    dataset = simulated_dataset(16, 8_000, 500, seed=21)  # 16 x p500
    print(f"dataset: {dataset.n_taxa} taxa, {dataset.n_partitions} partitions "
          "of 500 patterns\n")

    traces = {}
    for strategy in ("old", "new"):
        recorder = TraceRecorder()
        engine = PartitionedEngine(
            dataset.partitioned(),
            dataset.tree.copy(),
            branch_mode="per_partition",
            initial_lengths=dataset.true_lengths,
            recorder=recorder,
        )
        optimize_model(engine, strategy=strategy, max_rounds=2)
        traces[strategy] = recorder.finalize(
            engine.pattern_counts(), engine.states()
        )

    print("schedule diagnostics (machine-independent):")
    for strategy, trace in traces.items():
        print(f"  {strategy}PAR  {diagnose_trace(trace, 16).summary()}")

    print("\nreplay on the Sun x4600 (16 cores):")
    print(f"  {'strategy':<9} {'threads':>7} {'time':>9} {'busy':>7} "
          f"{'idle':>7} {'sync':>7}")
    for strategy, trace in traces.items():
        for threads in (8, 16):
            r = simulate_trace(trace, X4600, threads)
            print(f"  {strategy:<9} {threads:>7} {r.total_seconds:>8.2f}s "
                  f"{r.busy_seconds.mean():>6.2f}s {r.idle_seconds.mean():>6.2f}s "
                  f"{r.sync_seconds:>6.2f}s")

    print("\nthe phase breakdown of oldPAR at 16 threads:")
    r = simulate_trace(traces["old"], X4600, 16)
    for label, seconds in sorted(r.label_seconds.items(), key=lambda kv: -kv[1]):
        print(f"  {label:<22} {seconds:>7.2f}s "
              f"({seconds / r.total_seconds:>5.1%})")


if __name__ == "__main__":
    main()
