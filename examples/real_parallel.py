"""Real parallel execution on this machine (process-based master/worker).

Runs the PLK across actual worker processes — each owning a cyclic slice
of every partition's patterns, exactly like the Pthreads workers in the
paper — and measures wall-clock oldPAR vs newPAR for per-partition
branch-length optimization.  The pipe round-trip per command plays the
role of the barrier; newPAR needs far fewer of them.

Run:  python examples/real_parallel.py
"""
import time

import numpy as np

from repro.parallel import ParallelPLK
from repro.plk import PartitionedAlignment, SubstitutionModel, uniform_scheme
from repro.seqgen import random_topology_with_lengths, simulate_alignment

WORKERS = 4
PARTITIONS = 12


def main() -> None:
    rng = np.random.default_rng(5)
    tree, lengths = random_topology_with_lengths(12, rng)
    aln = simulate_alignment(
        tree, lengths, SubstitutionModel.random_gtr(0), 1.0, 2_400, rng
    )
    data = PartitionedAlignment(aln, uniform_scheme(2_400, 200))
    models = [SubstitutionModel.random_gtr(p) for p in range(PARTITIONS)]
    alphas = [1.0] * PARTITIONS
    edges = list(range(10))

    print(f"{data.n_partitions} partitions x 200 patterns, {WORKERS} worker "
          f"processes, optimizing {len(edges)} branches per strategy\n")

    results = {}
    for strategy in ("old", "new"):
        with ParallelPLK(
            data, tree, models, alphas, WORKERS,
            backend="processes", initial_lengths=lengths,
        ) as team:
            lnl0 = team.loglikelihood()
            t0 = time.perf_counter()
            team.optimize_branches(edges, strategy)
            elapsed = time.perf_counter() - t0
            lnl1 = team.loglikelihood()
            results[strategy] = (elapsed, team.commands_issued, lnl0, lnl1)
        print(f"{strategy}PAR: {elapsed*1e3:7.1f} ms, "
              f"{results[strategy][1]:5d} master commands, "
              f"lnL {lnl0:,.2f} -> {lnl1:,.2f}")

    speedup = results["old"][0] / results["new"][0]
    cmd_ratio = results["old"][1] / results["new"][1]
    print(f"\nnewPAR wall-clock advantage: {speedup:.2f}x "
          f"(command-count ratio {cmd_ratio:.1f}x)")
    assert abs(results["old"][3] - results["new"][3]) < 1e-3, \
        "strategies must find the same optimum"
    print("both strategies reached the same optimum (as the paper requires)")


if __name__ == "__main__":
    main()
