"""Partitioned multi-gene analysis (the paper's Fig. 2 setting).

Builds a 3-gene phylogenomic alignment where each gene evolved under its
own substitution model, Gamma shape and rate multiplier; defines the
partition scheme with a RAxML-style partition file; and runs a partitioned
analysis with per-partition branch lengths, recovering distinct parameter
estimates per gene.

Run:  python examples/partitioned_analysis.py
"""
import numpy as np

from repro.core import PartitionedEngine, TraceRecorder, optimize_model
from repro.plk import (
    Alignment,
    PartitionedAlignment,
    SubstitutionModel,
    parse_partition_file,
)
from repro.seqgen import random_topology_with_lengths, simulate_alignment

PARTITION_FILE = """
# gene boundaries, RAxML syntax (1-based, inclusive)
DNA, rbcL  = 1-1400
DNA, matK  = 1401-2200
DNA, cytb  = 2201-3600
"""

GENE_ALPHAS = {"rbcL": 0.35, "matK": 1.0, "cytb": 2.5}
GENE_RATE_MULTIPLIER = {"rbcL": 0.6, "matK": 1.0, "cytb": 1.8}


def main() -> None:
    rng = np.random.default_rng(2009)
    tree, lengths = random_topology_with_lengths(16, rng)
    scheme = parse_partition_file(PARTITION_FILE)

    # Evolve each gene under its own model — different alpha (rate
    # heterogeneity), different GTR rates, different overall speed.
    blocks = []
    for i, part in enumerate(scheme):
        model = SubstitutionModel.random_gtr(seed=100 + i)
        aln = simulate_alignment(
            tree,
            lengths * GENE_RATE_MULTIPLIER[part.name],
            model,
            alpha=GENE_ALPHAS[part.name],
            n_sites=part.n_sites,
            rng=rng,
        )
        blocks.append(aln.matrix)
    alignment = Alignment(tree.taxa, np.concatenate(blocks, axis=1))
    data = PartitionedAlignment(alignment, scheme)
    print(f"{data.n_partitions} partitions, patterns per gene: "
          f"{data.pattern_counts().tolist()}")

    # Partitioned analysis: per-partition Q, alpha AND branch lengths,
    # optimized with the paper's newPAR simultaneous strategy; the
    # recorder captures the parallel schedule as a side effect.
    recorder = TraceRecorder()
    engine = PartitionedEngine(
        data,
        tree,
        branch_mode="per_partition",
        initial_lengths=lengths,
        recorder=recorder,
    )
    lnl = optimize_model(engine, strategy="new", max_rounds=4)
    print(f"\npartitioned log-likelihood: {lnl:,.2f}\n")

    print(f"{'gene':<6} {'true alpha':>10} {'est alpha':>10} "
          f"{'true rate x':>11} {'est tree len x':>14}")
    base_len = None
    for part, engine_part in zip(scheme, engine.parts):
        tree_len = engine_part.branch_lengths.sum()
        if base_len is None:
            base_len = tree_len / GENE_RATE_MULTIPLIER[part.name]
        print(
            f"{part.name:<6} {GENE_ALPHAS[part.name]:>10.2f} "
            f"{engine_part.alpha:>10.2f} "
            f"{GENE_RATE_MULTIPLIER[part.name]:>11.2f} "
            f"{tree_len / base_len:>14.2f}"
        )

    trace = recorder.finalize(engine.pattern_counts(), engine.states())
    print(f"\ncaptured schedule: {trace.n_regions} parallel regions, "
          f"op totals {trace.op_totals()}")


if __name__ == "__main__":
    main()
