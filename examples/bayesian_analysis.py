"""Bayesian partitioned analysis with Metropolis coupling (MC3).

Paper Section IV discusses how the load-balance problem transfers to
Bayesian inference and how proposals should be redesigned.  This example
runs a small MC3 analysis with the *simultaneous* proposal scheduling the
paper recommends, shows posterior summaries per partition, and contrasts
the two schedulings' parallel-region counts.

Run:  python examples/bayesian_analysis.py     (~1 minute)
"""
import numpy as np

from repro.core import TraceRecorder
from repro.mcmc import BayesianChain, MetropolisCoupledSampler
from repro.plk import Alignment, PartitionedAlignment, SubstitutionModel, uniform_scheme
from repro.seqgen import random_topology_with_lengths, simulate_alignment


def main() -> None:
    rng = np.random.default_rng(31)
    tree, lengths = random_topology_with_lengths(10, rng)
    # Two genes with very different rate heterogeneity.
    true_alphas = (0.4, 2.0)
    blocks = []
    for i, alpha in enumerate(true_alphas):
        aln = simulate_alignment(
            tree, lengths, SubstitutionModel.random_gtr(i), alpha, 1_500, rng
        )
        blocks.append(aln.matrix)
    alignment = Alignment(tree.taxa, np.concatenate(blocks, axis=1))
    data = PartitionedAlignment(alignment, uniform_scheme(3_000, 1_500))

    # --- MC3 with 3 chains -------------------------------------------------
    sampler = MetropolisCoupledSampler(
        data, tree, n_chains=3, heat=0.25, seed=3,
        scheduling="simultaneous", initial_lengths=lengths,
    )
    samples = sampler.run(1_200, sample_every=10)
    alphas = samples.alpha_matrix()[30:]  # discard burn-in

    print(f"MC3: 3 chains, 1,200 generations, swap acceptance "
          f"{sampler.swaps_accepted}/{sampler.swaps_proposed}")
    print(f"cold-chain lnL (last): {samples.loglikelihood[-1]:,.2f}\n")
    print(f"{'partition':<10} {'true alpha':>10} {'post. median':>13} "
          f"{'95% interval':>18}")
    for p, true in enumerate(true_alphas):
        lo, med, hi = np.percentile(alphas[:, p], [2.5, 50, 97.5])
        print(f"gene{p:<6} {true:>10.2f} {med:>13.2f} "
              f"{'[' + format(lo, '.2f') + ', ' + format(hi, '.2f') + ']':>18}")

    # --- scheduling comparison ---------------------------------------------
    print("\nproposal-scheduling comparison (400 generations each):")
    for mode in ("per_partition", "simultaneous"):
        rec = TraceRecorder()
        chain = BayesianChain(
            data, tree.copy(), seed=9, scheduling=mode,
            recorder=rec, initial_lengths=lengths,
        )
        chain.run(400, sample_every=400)
        trace = rec.finalize(chain.engine.pattern_counts(), chain.engine.states())
        print(f"  {mode:<14} {trace.n_regions:5d} parallel regions "
              f"(acceptance {chain.acceptance_rate():.2f})")


if __name__ == "__main__":
    main()
