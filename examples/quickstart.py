"""Quickstart: compute and optimize a phylogenetic likelihood.

Simulates a small DNA alignment on a known tree, then uses the public API
to (1) compute the log-likelihood of the true tree, (2) optimize branch
lengths and model parameters, and (3) verify the fundamental PLK
invariant — the score does not depend on where the virtual root is placed.

Run:  python examples/quickstart.py
"""
import numpy as np

from repro.core import PartitionedEngine, optimize_model
from repro.plk import (
    PartitionedAlignment,
    SubstitutionModel,
    uniform_scheme,
    write_newick,
)
from repro.seqgen import random_topology_with_lengths, simulate_alignment


def main() -> None:
    rng = np.random.default_rng(42)

    # 1. A 12-taxon tree and a 3,000-column alignment evolved on it under
    #    GTR with Gamma-distributed rate heterogeneity.
    tree, true_lengths = random_topology_with_lengths(12, rng)
    true_model = SubstitutionModel.random_gtr(seed=7)
    alignment = simulate_alignment(
        tree, true_lengths, true_model, alpha=0.8, n_sites=3_000, rng=rng
    )
    print(f"alignment: {alignment.n_taxa} taxa x {alignment.n_sites} sites")

    # 2. Wrap it as a single partition and build the likelihood engine.
    data = PartitionedAlignment(alignment, uniform_scheme(3_000, 3_000))
    print(f"distinct patterns (m'): {data.n_patterns}")
    engine = PartitionedEngine(data, tree, initial_lengths=true_lengths)

    lnl_start = engine.loglikelihood()
    print(f"log-likelihood under JC69 defaults : {lnl_start:,.2f}")

    # 3. The virtual root can sit on any branch — same score (Felsenstein
    #    pruning under a time-reversible model).
    scores = [engine.loglikelihood(root_edge=e) for e in (0, 5, tree.n_edges - 1)]
    spread = max(scores) - min(scores)
    print(f"root-placement invariance: spread = {spread:.2e}")

    # 4. Optimize everything: GTR rates, Gamma shape, branch lengths.
    lnl_opt = optimize_model(engine, strategy="new", max_rounds=5)
    print(f"log-likelihood after optimization  : {lnl_opt:,.2f}  "
          f"(improved by {lnl_opt - lnl_start:,.2f})")

    part = engine.parts[0]
    print(f"estimated alpha: {part.alpha:.3f} (truth: 0.8)")
    print(f"estimated rates: {np.round(part.model.rates, 3)}")
    print(f"true rates     : {np.round(true_model.rates, 3)}")

    # 5. Export the optimized tree.
    newick = write_newick(tree, part.branch_lengths)
    print(f"optimized tree : {newick[:88]}...")


if __name__ == "__main__":
    main()
