"""Exploring the simulated testbed: platforms, cost model, distributions.

Shows the machine models of the paper's four systems (Nehalem, Clovertown,
Barcelona, Sun x4600), the roofline cost of each kernel op for DNA vs
protein data, and how cyclic vs block pattern distribution changes the
balance of a partitioned schedule.

Run:  python examples/platform_comparison.py
"""
import numpy as np

from repro.core import Region, Trace, WorkItem
from repro.simmachine import (
    PLATFORMS,
    bytes_per_pattern,
    flops_per_pattern,
    seconds_per_pattern,
    simulate_trace,
)


def main() -> None:
    print("The paper's platforms:")
    header = (f"{'platform':<12} {'cores':>5} {'GHz':>6} {'mem/thread @8T':>15} "
              f"{'barrier @8T':>12} {'barrier @16T':>13}")
    print(header)
    print("-" * len(header))
    for machine in PLATFORMS.values():
        bw8 = machine.bandwidth_per_thread(8) / 1e9
        b8 = machine.barrier_seconds(8) * 1e6
        b16 = machine.barrier_seconds(16) * 1e6 if machine.cores >= 16 else float("nan")
        b16_txt = f"{b16:10.1f}us" if machine.cores >= 16 else f"{'-':>12}"
        print(f"{machine.name:<12} {machine.cores:>5} {machine.clock_ghz:>6.2f} "
              f"{bw8:>12.1f}GB/s {b8:>10.1f}us {b16_txt}")

    print("\nPer-pattern kernel cost (flops | bytes | ns on Nehalem, 1 thread):")
    nehalem = PLATFORMS["nehalem"]
    for op in ("newview", "sumtable", "derivative", "evaluate"):
        row = [f"{op:<11}"]
        for states, label in ((4, "DNA"), (20, "AA")):
            f = flops_per_pattern(op, states, 4)
            b = bytes_per_pattern(op, states, 4)
            ns = seconds_per_pattern(op, states, 4, nehalem, 1) * 1e9
            row.append(f"{label}: {f:6.0f}fl {b:5.0f}B {ns:7.1f}ns")
        print("  ".join(row))
    ratio = flops_per_pattern("newview", 20, 4) / flops_per_pattern("newview", 4, 4)
    print(f"protein/DNA cost ratio: {ratio:.1f}x  (paper: 20x20/4x4 = 25x)")

    # A synthetic schedule: 40 rounds of per-partition work on a short
    # partition embedded in a long alignment — replayed under both
    # distribution policies.
    print("\nDistribution-policy ablation (one 200-pattern partition of a "
          "10,000-pattern alignment, 200 per-partition regions):")
    regions = [
        Region(items=[WorkItem(1, "derivative", 200, 1)], label="nr")
        for _ in range(200)
    ]
    trace = Trace(
        regions=regions,
        pattern_counts=np.array([4_900, 200, 4_900]),
        states=np.array([4, 4, 4]),
    )
    for policy in ("cyclic", "block"):
        res = simulate_trace(trace, PLATFORMS["x4600"], 16, policy)
        print(f"  {policy:<7} time {res.total_seconds*1e3:7.2f} ms   "
              f"efficiency {res.efficiency:6.1%}")


if __name__ == "__main__":
    main()
