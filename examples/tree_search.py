"""Full ML tree inference from sequence data alone.

The complete RAxML-style pipeline on simulated data: randomized stepwise-
addition parsimony starting tree, then SPR hill climbing alternating with
model-parameter optimization — and a check that the inferred topology
matches the (known) generating tree.

Run:  python examples/tree_search.py
"""
import numpy as np

from repro.core import PartitionedEngine
from repro.plk import PartitionedAlignment, SubstitutionModel, uniform_scheme, write_newick
from repro.search import (
    encode_bitmasks,
    fitch_score,
    stepwise_addition_tree,
    tree_search,
)
from repro.seqgen import random_topology_with_lengths, simulate_alignment


def main() -> None:
    rng = np.random.default_rng(7)

    # Ground truth: a 15-taxon tree; 2 genes with different dynamics.
    true_tree, true_lengths = random_topology_with_lengths(15, rng)
    blocks = []
    for seed, alpha in ((1, 0.5), (2, 1.5)):
        aln = simulate_alignment(
            true_tree, true_lengths, SubstitutionModel.random_gtr(seed),
            alpha=alpha, n_sites=1_500, rng=rng,
        )
        blocks.append(aln.matrix)
    from repro.plk import Alignment

    alignment = Alignment(true_tree.taxa, np.concatenate(blocks, axis=1))
    data = PartitionedAlignment(alignment, uniform_scheme(3_000, 1_500))

    # 1. Parsimony starting tree (randomized stepwise addition).
    start = stepwise_addition_tree(alignment, rng)
    masks, weights = encode_bitmasks(alignment)
    print(f"parsimony start: score {fitch_score(start, masks, weights):,}, "
          f"RF distance to truth {start.robinson_foulds(true_tree)}")

    # 2. ML search: SPR hill climbing + model optimization.
    engine = PartitionedEngine(data, start, branch_mode="per_partition")
    result = tree_search(engine, strategy="new", radius=4, max_rounds=5)
    print(f"ML search: {result.rounds} rounds, "
          f"{result.accepted_moves}/{result.evaluated_moves} moves accepted")
    print(f"final log-likelihood: {result.loglikelihood:,.2f}")
    print("lnL trajectory:", " -> ".join(f"{x:,.1f}" for x in result.history))

    # 3. Compare against the generating topology.
    rf = start.robinson_foulds(true_tree)
    print(f"RF distance to the true tree after search: {rf}")
    print("\ninferred tree (partition 0 branch lengths):")
    print(write_newick(start, engine.parts[0].branch_lengths, precision=4))


if __name__ == "__main__":
    main()
