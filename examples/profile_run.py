"""Measure the paper's busy/idle decomposition on real parallel workers.

The simulator (`examples/load_balance_study.py`) *predicts* per-thread
busy, idle and synchronization time from a captured schedule; this script
*measures* the same decomposition with `repro.perf` on the actual
thread/process backends, then puts prediction and measurement side by side
with the shared `decomposition()` vocabulary.

What to look for in the output:

* oldPAR issues ~5x more parallel regions (one tiny command per optimizer
  iteration per partition), so its synchronization share dwarfs its busy
  share — the paper's Figure 3/4 pathology, on your machine;
* newPAR's parallel efficiency is strictly higher at every worker count;
* the measured efficiency ordering matches the simulator's prediction,
  even though absolute times differ (Python + IPC vs modelled Pthreads).

Run:  python examples/profile_run.py
"""
import numpy as np

from repro.core import PartitionedEngine, TraceRecorder, optimize_branch
from repro.parallel import ParallelPLK
from repro.perf import Profiler, compare_decompositions, compare_strategies
from repro.plk import PartitionedAlignment, SubstitutionModel, uniform_scheme
from repro.seqgen import random_topology_with_lengths, simulate_alignment
from repro.simmachine import NEHALEM, simulate_trace

WORKERS = 4
PARTITIONS = 10
EDGES = list(range(5))


def main() -> None:
    rng = np.random.default_rng(11)
    tree, lengths = random_topology_with_lengths(12, rng)
    aln = simulate_alignment(
        tree, lengths, SubstitutionModel.random_gtr(0), 1.0, 2_000, rng
    )
    data = PartitionedAlignment(aln, uniform_scheme(2_000, 200))
    models = [SubstitutionModel.random_gtr(p) for p in range(PARTITIONS)]
    alphas = [1.0] * PARTITIONS

    print(f"{PARTITIONS} partitions, {WORKERS} worker processes, "
          f"{len(EDGES)} branches per strategy\n")

    # -- measure both strategies on the real processes backend ------------
    profiles = {}
    for strategy in ("old", "new"):
        profiler = Profiler(meta={"strategy": strategy})
        with ParallelPLK(
            data, tree, models, alphas, WORKERS,
            backend="processes", initial_lengths=lengths, profiler=profiler,
        ) as team:
            team.optimize_branches(EDGES, strategy)
        profiles[strategy] = profiler.profile()
        print(f"{strategy}PAR measured\n{profiles[strategy].summary()}\n")

    print(compare_strategies(profiles["old"], profiles["new"]).summary())

    # -- compare newPAR's measurement against a simulator prediction ------
    recorder = TraceRecorder()
    engine = PartitionedEngine(
        data, tree.copy(), models=models, alphas=alphas,
        initial_lengths=lengths, recorder=recorder,
    )
    for edge in EDGES:
        optimize_branch(engine, edge, strategy="new")
    trace = recorder.finalize(engine.pattern_counts(), engine.states())
    predicted = simulate_trace(trace, NEHALEM, WORKERS)

    print("\nnewPAR: measured (this host) vs predicted (simulated Nehalem)")
    print(compare_decompositions(
        profiles["new"], predicted, labels=("measured", "predicted")
    ).summary())


if __name__ == "__main__":
    main()
